//! Linear integer arithmetic reasoning.
//!
//! Integer-sorted facts from the path condition are converted into linear
//! constraints over *atoms* (maximal non-arithmetic sub-terms, keyed by their
//! congruence-closure representative so that equalities discovered elsewhere
//! are taken into account). Infeasibility is detected by a combination of
//! bound propagation and a bounded Fourier–Motzkin-style elimination pass.
//! The procedure is sound for unsatisfiability: it only ever answers
//! "definitely contradictory" when the constraints have no integer solution.

use crate::congruence::{Congruence, TermId};
use crate::expr::{BinOp, Expr, UnOp};
use std::collections::BTreeMap;

/// A linear polynomial: constant + sum of coefficient * atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// Constant term.
    pub constant: i128,
    /// Coefficients keyed by atom (congruence representative).
    pub coeffs: BTreeMap<TermId, i128>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i128) -> Poly {
        Poly {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient 1.
    pub fn atom(t: TermId) -> Poly {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(t, 1);
        Poly {
            constant: 0,
            coeffs,
        }
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        out.constant += other.constant;
        for (k, v) in &other.coeffs {
            *out.coeffs.entry(*k).or_insert(0) += v;
        }
        out.normalize();
        out
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.scale(-1))
    }

    /// Multiplication by a constant.
    pub fn scale(&self, c: i128) -> Poly {
        let mut out = Poly {
            constant: self.constant * c,
            coeffs: self.coeffs.iter().map(|(k, v)| (*k, v * c)).collect(),
        };
        out.normalize();
        out
    }

    fn normalize(&mut self) {
        self.coeffs.retain(|_, v| *v != 0);
    }

    /// Is this polynomial a constant?
    pub fn as_constant(&self) -> Option<i128> {
        if self.coeffs.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }
}

/// A constraint `poly <= 0` (non-strict; strict inequalities over integers are
/// converted with `a < b  ==>  a - b + 1 <= 0`).
#[derive(Clone, Debug)]
pub struct LeZero(pub Poly);

/// The linear-arithmetic context built from a set of literals.
///
/// Supports **incremental** use: constraints accumulate across
/// [`Linear::solve`] calls, a `frontier` marks how far pairwise elimination
/// has already been pushed (so a re-solve after a few new constraints only
/// combines pairs involving the new rows — semi-naive evaluation), and
/// [`Linear::snapshot`]/[`Linear::undo_to`] restore an earlier state in
/// O(changes). Derived rows carried across solves are consequences of rows
/// below them in the vector, so truncation is always sound.
#[derive(Clone, Debug, Default)]
pub struct Linear {
    constraints: Vec<LeZero>,
    contradiction: bool,
    /// Constraints below this index have been exhaustively pairwise-combined
    /// against each other by earlier [`Linear::solve`] calls.
    frontier: usize,
    /// Every [`TermId`] ever used as an atom key (conservative: entries are
    /// *not* removed on undo — stale entries can only cause a spurious
    /// staleness rebuild upstream, never unsoundness).
    atoms: std::collections::BTreeSet<TermId>,
    /// The constraint store hit `MAX_CONSTRAINTS`: derivation stopped. A
    /// persistent context that keeps asserting afterwards must rebuild (see
    /// [`Linear::needs_rebuild`]) — a saturated store silently blocks the
    /// eliminations new facts would need, which a per-query rebuild never
    /// experiences.
    saturated: bool,
    /// Rows asserted after saturation (they were never combined).
    rows_since_saturation: usize,
    /// Membership index over `constraints` for O(1) derivation dedup.
    /// Maintained as a *subset* of the live rows (duplicate asserted rows
    /// share one entry, and an undo may drop the entry while a copy
    /// survives) — an absent entry merely re-appends a duplicate row,
    /// never loses a derivation.
    seen: std::collections::HashSet<Poly>,
}

/// A restore point for [`Linear::undo_to`].
#[derive(Clone, Copy, Debug)]
pub struct LinSnapshot {
    constraints_len: usize,
    frontier: usize,
    contradiction: bool,
    saturated: bool,
    rows_since_saturation: usize,
}

impl Linear {
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a restore point for [`Linear::undo_to`].
    pub fn snapshot(&self) -> LinSnapshot {
        LinSnapshot {
            constraints_len: self.constraints.len(),
            frontier: self.frontier,
            contradiction: self.contradiction,
            saturated: self.saturated,
            rows_since_saturation: self.rows_since_saturation,
        }
    }

    /// Restores an earlier [`Linear::snapshot`]: constraints added (asserted
    /// *or* derived) since are dropped and the elimination frontier rolls
    /// back so re-solves recombine whatever needs recombining.
    pub fn undo_to(&mut self, snap: &LinSnapshot) {
        for c in &self.constraints[snap.constraints_len.min(self.constraints.len())..] {
            self.seen.remove(&c.0);
        }
        self.constraints.truncate(snap.constraints_len);
        self.frontier = snap.frontier;
        self.contradiction = snap.contradiction;
        self.saturated = snap.saturated;
        self.rows_since_saturation = snap.rows_since_saturation;
    }

    /// Did rows arrive after the store saturated? They were never combined
    /// with anything, so a persistent caller must rebuild from its source
    /// facts (dropping the accumulated derived rows) to stay as complete as
    /// a per-query solve.
    pub fn needs_rebuild(&self) -> bool {
        self.saturated && self.rows_since_saturation > 0
    }

    /// Has this id ever been used as an atom key? Conservative over undo —
    /// see the field docs. The theory combiner uses this to detect
    /// congruence merges that absorb a class some constraint row
    /// references (the staleness-rebuild trigger).
    pub fn is_atom(&self, t: TermId) -> bool {
        self.atoms.contains(&t)
    }

    /// Returns `true` if the collected constraints are definitely
    /// unsatisfiable over the integers.
    pub fn contradictory(&self) -> bool {
        self.contradiction
    }

    /// Converts an integer-sorted expression into a polynomial, interning
    /// non-arithmetic sub-terms as atoms via the congruence closure.
    pub fn poly_of(&mut self, e: &Expr, cc: &mut Congruence) -> Poly {
        match e {
            Expr::Int(i) => Poly::constant(*i),
            Expr::BinOp(BinOp::Add, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                pa.add(&pb)
            }
            Expr::BinOp(BinOp::Sub, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                pa.sub(&pb)
            }
            Expr::BinOp(BinOp::Mul, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                match (pa.as_constant(), pb.as_constant()) {
                    (Some(ca), _) => pb.scale(ca),
                    (_, Some(cb)) => pa.scale(cb),
                    // Non-linear: treat the whole product as an atom.
                    _ => {
                        let rep = cc.rep_of(e);
                        self.atoms.insert(rep);
                        Poly::atom(rep)
                    }
                }
            }
            Expr::UnOp(UnOp::Neg, a) => self.poly_of(a, cc).scale(-1),
            _ => {
                let rep = cc.rep_of(e);
                self.atoms.insert(rep);
                let atom = Poly::atom(rep);
                // Sequence lengths are always non-negative; record that fact
                // whenever a length term becomes an atom.
                if matches!(e, Expr::UnOp(UnOp::SeqLen, _)) {
                    self.constraints.push(LeZero(atom.scale(-1)));
                }
                atom
            }
        }
    }

    /// Adds the fact `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        self.push(LeZero(pl.sub(&pr)));
    }

    /// Adds the fact `lhs < rhs`.
    pub fn add_lt(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        self.push(LeZero(pl.sub(&pr).add(&Poly::constant(1))));
    }

    /// Adds the fact `lhs == rhs` (as two inequalities).
    pub fn add_eq(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        let d = pl.sub(&pr);
        self.push(LeZero(d.clone()));
        self.push(LeZero(d.scale(-1)));
    }

    /// Adds the fact that `e >= 0` (e.g. sequence lengths, sizes).
    pub fn add_nonneg(&mut self, e: &Expr, cc: &mut Congruence) {
        let p = self.poly_of(e, cc);
        self.push(LeZero(p.scale(-1)));
    }

    fn push(&mut self, c: LeZero) {
        if let Some(k) = c.0.as_constant() {
            if k > 0 {
                self.contradiction = true;
            }
            return;
        }
        if self.saturated {
            self.rows_since_saturation += 1;
        }
        self.seen.insert(c.0.clone());
        self.constraints.push(c);
    }

    /// Runs the decision procedure: bound propagation plus a bounded number of
    /// Fourier–Motzkin elimination rounds.
    ///
    /// Semi-naive: pairs entirely below the persistent `frontier` were
    /// combined by an earlier call, so each round only pairs constraints
    /// against the rows added since (asserted or derived). On a fresh
    /// context this explores exactly the pair set the naive version did
    /// (re-derivations were discarded by the dedup anyway); on a warm
    /// context a re-solve after one new fact costs O(new × old), not
    /// O(old²).
    pub fn solve(&mut self) {
        if self.contradiction {
            return;
        }
        // Bounded elimination: repeatedly combine pairs of constraints where an
        // atom occurs with opposite signs, deriving new constraints without
        // that atom. To stay cheap we only derive combinations whose resulting
        // polynomial has at most 4 atoms, and we cap the total number of
        // constraints.
        const MAX_CONSTRAINTS: usize = 4096;
        const MAX_ROUNDS: usize = 4;
        let mut new_start = self.frontier.min(self.constraints.len());
        for _ in 0..MAX_ROUNDS {
            let n = self.constraints.len();
            if new_start >= n {
                break;
            }
            let mut new_constraints: Vec<LeZero> = Vec::new();
            for i in 0..n {
                for j in (i + 1).max(new_start)..n {
                    let a = &self.constraints[i].0;
                    let b = &self.constraints[j].0;
                    // Find an atom with opposite signs.
                    let mut candidate = None;
                    for (atom, ca) in &a.coeffs {
                        if let Some(cb) = b.coeffs.get(atom) {
                            if ca.signum() != cb.signum() {
                                candidate = Some((*atom, *ca, *cb));
                                break;
                            }
                        }
                    }
                    let Some((_atom, ca, cb)) = candidate else {
                        continue;
                    };
                    // Combine: |cb| * a + |ca| * b eliminates the atom.
                    let combined = a.scale(cb.abs()).add(&b.scale(ca.abs()));
                    if let Some(k) = combined.as_constant() {
                        if k > 0 {
                            self.contradiction = true;
                            return;
                        }
                        continue;
                    }
                    if combined.coeffs.len() <= 4 {
                        new_constraints.push(LeZero(combined));
                    }
                }
            }
            new_start = n;
            if new_constraints.is_empty() {
                break;
            }
            // Deduplicate against existing constraints.
            for c in new_constraints {
                if self.constraints.len() >= MAX_CONSTRAINTS {
                    self.saturated = true;
                    self.frontier = self.constraints.len();
                    return;
                }
                if self.seen.insert(c.0.clone()) {
                    self.constraints.push(c);
                }
            }
        }
        self.frontier = self.constraints.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    fn setup() -> (Congruence, Linear, VarGen) {
        (Congruence::new(), Linear::new(), VarGen::new())
    }

    #[test]
    fn simple_bound_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_lt(&x, &Expr::Int(3), &mut cc); // x < 3
        lin.add_le(&Expr::Int(5), &x, &mut cc); // 5 <= x
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn consistent_bounds_do_not_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_lt(&x, &Expr::Int(3), &mut cc);
        lin.add_le(&Expr::Int(0), &x, &mut cc);
        lin.solve();
        assert!(!lin.contradictory());
    }

    #[test]
    fn transitive_chain_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_lt(&x, &y, &mut cc); // x < y
        lin.add_le(&y, &x, &mut cc); // y <= x
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn equality_plus_strict_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_eq(&x, &y, &mut cc);
        lin.add_lt(&x, &y, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn addition_reasoning() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        // x + 1 <= 0 and x >= 0 is contradictory.
        lin.add_le(&Expr::add(x.clone(), Expr::Int(1)), &Expr::Int(0), &mut cc);
        lin.add_le(&Expr::Int(0), &x, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn atoms_share_congruence_representative() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        // If x == y is known by congruence, then x < 3 and y >= 5 conflict.
        cc.assert_eq_exprs(&x, &y);
        lin.add_lt(&x, &Expr::Int(3), &mut cc);
        lin.add_le(&Expr::Int(5), &y, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn nonlinear_products_are_opaque_atoms() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        let prod = Expr::mul(x.clone(), y.clone());
        lin.add_le(&prod, &Expr::Int(10), &mut cc);
        lin.add_le(&Expr::Int(20), &prod, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn uninterpreted_terms_as_atoms() {
        let (mut cc, mut lin, mut g) = setup();
        let s = g.fresh_expr();
        let len = Expr::seq_len(s);
        // len(s) < 5 and len(s) > 5 conflict.
        lin.add_lt(&len, &Expr::Int(5), &mut cc);
        lin.add_lt(&Expr::Int(5), &len, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn constant_only_conflict_detected_on_push() {
        let (mut cc, mut lin, _g) = setup();
        lin.add_lt(&Expr::Int(5), &Expr::Int(3), &mut cc);
        assert!(lin.contradictory());
    }

    #[test]
    fn incremental_resolve_after_new_fact() {
        // Solve, add one more fact, re-solve: the semi-naive frontier must
        // still find the conflict introduced by the late fact.
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_lt(&x, &y, &mut cc); // x < y
        lin.solve();
        assert!(!lin.contradictory());
        lin.add_le(&y, &x, &mut cc); // y <= x
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn snapshot_undo_restores_consistency() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_le(&Expr::Int(0), &x, &mut cc); // 0 <= x
        lin.solve();
        let snap = lin.snapshot();
        lin.add_lt(&x, &Expr::Int(0), &mut cc); // x < 0
        lin.solve();
        assert!(lin.contradictory());
        lin.undo_to(&snap);
        assert!(!lin.contradictory());
        // The surviving bound still works with new facts.
        lin.add_lt(&x, &Expr::Int(5), &mut cc);
        lin.solve();
        assert!(!lin.contradictory());
        lin.add_le(&Expr::Int(7), &x, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn undo_rolls_back_derived_rows() {
        // Derived rows from an inner scope must not outlive it: after the
        // undo, facts that only conflicted via the inner fact are consistent.
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_lt(&x, &y, &mut cc); // x < y
        lin.solve();
        let snap = lin.snapshot();
        lin.add_lt(&y, &Expr::Int(0), &mut cc); // y < 0 (derives x < -1 …)
        lin.solve();
        assert!(!lin.contradictory());
        lin.undo_to(&snap);
        lin.add_le(&Expr::Int(0), &x, &mut cc); // 0 <= x — fine without y < 0
        lin.solve();
        assert!(!lin.contradictory());
    }

    #[test]
    fn atoms_are_registered() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_lt(&x, &Expr::Int(3), &mut cc);
        let rep = cc.rep_of(&x);
        assert!(lin.is_atom(rep));
    }

    #[test]
    fn scale_and_add_polys() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let p = lin.poly_of(&Expr::mul(Expr::Int(3), x.clone()), &mut cc);
        let q = lin.poly_of(&x, &mut cc);
        let sum = p.add(&q.scale(-3));
        assert_eq!(sum.as_constant(), Some(0));
    }
}
