//! Linear integer arithmetic reasoning.
//!
//! Integer-sorted facts from the path condition are converted into linear
//! constraints over *atoms* (maximal non-arithmetic sub-terms, keyed by their
//! congruence-closure representative so that equalities discovered elsewhere
//! are taken into account). Infeasibility is detected by a combination of
//! bound propagation and a bounded Fourier–Motzkin-style elimination pass.
//! The procedure is sound for unsatisfiability: it only ever answers
//! "definitely contradictory" when the constraints have no integer solution.

use crate::congruence::{Congruence, TermId};
use crate::expr::{BinOp, Expr, UnOp};
use std::collections::BTreeMap;

/// A linear polynomial: constant + sum of coefficient * atom.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    /// Constant term.
    pub constant: i128,
    /// Coefficients keyed by atom (congruence representative).
    pub coeffs: BTreeMap<TermId, i128>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i128) -> Poly {
        Poly {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient 1.
    pub fn atom(t: TermId) -> Poly {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(t, 1);
        Poly {
            constant: 0,
            coeffs,
        }
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        out.constant += other.constant;
        for (k, v) in &other.coeffs {
            *out.coeffs.entry(*k).or_insert(0) += v;
        }
        out.normalize();
        out
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.scale(-1))
    }

    /// Multiplication by a constant.
    pub fn scale(&self, c: i128) -> Poly {
        let mut out = Poly {
            constant: self.constant * c,
            coeffs: self.coeffs.iter().map(|(k, v)| (*k, v * c)).collect(),
        };
        out.normalize();
        out
    }

    fn normalize(&mut self) {
        self.coeffs.retain(|_, v| *v != 0);
    }

    /// Is this polynomial a constant?
    pub fn as_constant(&self) -> Option<i128> {
        if self.coeffs.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }
}

/// A constraint `poly <= 0` (non-strict; strict inequalities over integers are
/// converted with `a < b  ==>  a - b + 1 <= 0`).
#[derive(Clone, Debug)]
pub struct LeZero(pub Poly);

/// The linear-arithmetic context built from a set of literals.
#[derive(Clone, Debug, Default)]
pub struct Linear {
    constraints: Vec<LeZero>,
    contradiction: bool,
}

impl Linear {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the collected constraints are definitely
    /// unsatisfiable over the integers.
    pub fn contradictory(&self) -> bool {
        self.contradiction
    }

    /// Converts an integer-sorted expression into a polynomial, interning
    /// non-arithmetic sub-terms as atoms via the congruence closure.
    pub fn poly_of(&mut self, e: &Expr, cc: &mut Congruence) -> Poly {
        match e {
            Expr::Int(i) => Poly::constant(*i),
            Expr::BinOp(BinOp::Add, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                pa.add(&pb)
            }
            Expr::BinOp(BinOp::Sub, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                pa.sub(&pb)
            }
            Expr::BinOp(BinOp::Mul, a, b) => {
                let pa = self.poly_of(a, cc);
                let pb = self.poly_of(b, cc);
                match (pa.as_constant(), pb.as_constant()) {
                    (Some(ca), _) => pb.scale(ca),
                    (_, Some(cb)) => pa.scale(cb),
                    // Non-linear: treat the whole product as an atom.
                    _ => Poly::atom(cc.rep_of(e)),
                }
            }
            Expr::UnOp(UnOp::Neg, a) => self.poly_of(a, cc).scale(-1),
            _ => {
                let atom = Poly::atom(cc.rep_of(e));
                // Sequence lengths are always non-negative; record that fact
                // whenever a length term becomes an atom.
                if matches!(e, Expr::UnOp(UnOp::SeqLen, _)) {
                    self.constraints.push(LeZero(atom.scale(-1)));
                }
                atom
            }
        }
    }

    /// Adds the fact `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        self.push(LeZero(pl.sub(&pr)));
    }

    /// Adds the fact `lhs < rhs`.
    pub fn add_lt(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        self.push(LeZero(pl.sub(&pr).add(&Poly::constant(1))));
    }

    /// Adds the fact `lhs == rhs` (as two inequalities).
    pub fn add_eq(&mut self, lhs: &Expr, rhs: &Expr, cc: &mut Congruence) {
        let pl = self.poly_of(lhs, cc);
        let pr = self.poly_of(rhs, cc);
        let d = pl.sub(&pr);
        self.push(LeZero(d.clone()));
        self.push(LeZero(d.scale(-1)));
    }

    /// Adds the fact that `e >= 0` (e.g. sequence lengths, sizes).
    pub fn add_nonneg(&mut self, e: &Expr, cc: &mut Congruence) {
        let p = self.poly_of(e, cc);
        self.push(LeZero(p.scale(-1)));
    }

    fn push(&mut self, c: LeZero) {
        if let Some(k) = c.0.as_constant() {
            if k > 0 {
                self.contradiction = true;
            }
            return;
        }
        self.constraints.push(c);
    }

    /// Runs the decision procedure: bound propagation plus a bounded number of
    /// Fourier–Motzkin elimination rounds.
    pub fn solve(&mut self) {
        if self.contradiction {
            return;
        }
        // Bounded elimination: repeatedly combine pairs of constraints where an
        // atom occurs with opposite signs, deriving new constraints without
        // that atom. To stay cheap we only derive combinations whose resulting
        // polynomial has at most 4 atoms, and we cap the total number of
        // constraints.
        const MAX_CONSTRAINTS: usize = 4096;
        const MAX_ROUNDS: usize = 4;
        for _ in 0..MAX_ROUNDS {
            if self.contradiction {
                return;
            }
            let mut new_constraints: Vec<LeZero> = Vec::new();
            let n = self.constraints.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    let a = &self.constraints[i].0;
                    let b = &self.constraints[j].0;
                    // Find an atom with opposite signs.
                    let mut candidate = None;
                    for (atom, ca) in &a.coeffs {
                        if let Some(cb) = b.coeffs.get(atom) {
                            if ca.signum() != cb.signum() {
                                candidate = Some((*atom, *ca, *cb));
                                break;
                            }
                        }
                    }
                    let Some((_atom, ca, cb)) = candidate else {
                        continue;
                    };
                    // Combine: |cb| * a + |ca| * b eliminates the atom.
                    let combined = a.scale(cb.abs()).add(&b.scale(ca.abs()));
                    if let Some(k) = combined.as_constant() {
                        if k > 0 {
                            self.contradiction = true;
                            return;
                        }
                        continue;
                    }
                    if combined.coeffs.len() <= 4 {
                        new_constraints.push(LeZero(combined));
                    }
                }
            }
            if new_constraints.is_empty() {
                return;
            }
            // Deduplicate against existing constraints.
            for c in new_constraints {
                if self.constraints.len() >= MAX_CONSTRAINTS {
                    return;
                }
                if !self.constraints.iter().any(|e| e.0 == c.0) {
                    self.constraints.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    fn setup() -> (Congruence, Linear, VarGen) {
        (Congruence::new(), Linear::new(), VarGen::new())
    }

    #[test]
    fn simple_bound_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_lt(&x, &Expr::Int(3), &mut cc); // x < 3
        lin.add_le(&Expr::Int(5), &x, &mut cc); // 5 <= x
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn consistent_bounds_do_not_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        lin.add_lt(&x, &Expr::Int(3), &mut cc);
        lin.add_le(&Expr::Int(0), &x, &mut cc);
        lin.solve();
        assert!(!lin.contradictory());
    }

    #[test]
    fn transitive_chain_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_lt(&x, &y, &mut cc); // x < y
        lin.add_le(&y, &x, &mut cc); // y <= x
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn equality_plus_strict_conflict() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        lin.add_eq(&x, &y, &mut cc);
        lin.add_lt(&x, &y, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn addition_reasoning() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        // x + 1 <= 0 and x >= 0 is contradictory.
        lin.add_le(&Expr::add(x.clone(), Expr::Int(1)), &Expr::Int(0), &mut cc);
        lin.add_le(&Expr::Int(0), &x, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn atoms_share_congruence_representative() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        // If x == y is known by congruence, then x < 3 and y >= 5 conflict.
        cc.assert_eq_exprs(&x, &y);
        lin.add_lt(&x, &Expr::Int(3), &mut cc);
        lin.add_le(&Expr::Int(5), &y, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn nonlinear_products_are_opaque_atoms() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        let prod = Expr::mul(x.clone(), y.clone());
        lin.add_le(&prod, &Expr::Int(10), &mut cc);
        lin.add_le(&Expr::Int(20), &prod, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn uninterpreted_terms_as_atoms() {
        let (mut cc, mut lin, mut g) = setup();
        let s = g.fresh_expr();
        let len = Expr::seq_len(s);
        // len(s) < 5 and len(s) > 5 conflict.
        lin.add_lt(&len, &Expr::Int(5), &mut cc);
        lin.add_lt(&Expr::Int(5), &len, &mut cc);
        lin.solve();
        assert!(lin.contradictory());
    }

    #[test]
    fn constant_only_conflict_detected_on_push() {
        let (mut cc, mut lin, _g) = setup();
        lin.add_lt(&Expr::Int(5), &Expr::Int(3), &mut cc);
        assert!(lin.contradictory());
    }

    #[test]
    fn scale_and_add_polys() {
        let (mut cc, mut lin, mut g) = setup();
        let x = g.fresh_expr();
        let p = lin.poly_of(&Expr::mul(Expr::Int(3), x.clone()), &mut cc);
        let q = lin.poly_of(&x, &mut cc);
        let sum = p.add(&q.scale(-3));
        assert_eq!(sum.as_constant(), Some(0));
    }
}
