//! Multiset ("bag") reasoning.
//!
//! Bags are used to decide `permutation_of` obligations coming from Pearlite
//! specifications: `s.permutation_of(t)` is encoded as `bag(s) == bag(t)`.
//! A bag expression is normalised into a multiset of *element* terms plus a
//! multiset of opaque *bag atoms* (bags of sequences whose structure is
//! unknown); two bag expressions are definitely equal when their normal forms
//! coincide (with all terms keyed by congruence-closure representatives).

use crate::congruence::{Congruence, TermId};
use crate::expr::{BinOp, Expr, UnOp};
use std::collections::BTreeMap;

/// Normal form of a bag expression.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BagNorm {
    /// Multiplicity of each known element term.
    pub elems: BTreeMap<TermId, u64>,
    /// Multiplicity of each opaque bag atom (`bag(s)` for non-literal `s`).
    pub atoms: BTreeMap<TermId, u64>,
}

impl BagNorm {
    fn add_elem(&mut self, t: TermId) {
        *self.elems.entry(t).or_insert(0) += 1;
    }

    fn add_atom(&mut self, t: TermId) {
        *self.atoms.entry(t).or_insert(0) += 1;
    }

    #[allow(dead_code)]
    fn merge(&mut self, other: BagNorm) {
        for (k, v) in other.elems {
            *self.elems.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.atoms {
            *self.atoms.entry(k).or_insert(0) += v;
        }
    }
}

/// Is the expression bag-sorted (a `bag(..)` or a bag union)?
pub fn is_bag_expr(e: &Expr) -> bool {
    matches!(
        e,
        Expr::UnOp(UnOp::BagOf, _) | Expr::BinOp(BinOp::BagUnion, _, _)
    )
}

/// Normalises a bag expression.
pub fn normalize(e: &Expr, cc: &mut Congruence) -> BagNorm {
    let mut out = BagNorm::default();
    go(e, cc, &mut out);
    out
}

fn go(e: &Expr, cc: &mut Congruence, out: &mut BagNorm) {
    match e {
        Expr::BinOp(BinOp::BagUnion, a, b) => {
            go(a, cc, out);
            go(b, cc, out);
        }
        Expr::UnOp(UnOp::BagOf, inner) => go_seq(inner, cc, out),
        // Anything else bag-sorted is opaque.
        _ => out.add_atom(cc.rep_of(e)),
    }
}

fn go_seq(s: &Expr, cc: &mut Congruence, out: &mut BagNorm) {
    match s {
        Expr::SeqLit(items) => {
            for item in items {
                let rep = cc.rep_of(item);
                out.add_elem(rep);
            }
        }
        Expr::BinOp(BinOp::SeqConcat, a, b) => {
            go_seq(a, cc, out);
            go_seq(b, cc, out);
        }
        _ => {
            let bag = Expr::bag_of(s.clone());
            let rep = cc.rep_of(&bag);
            out.add_atom(rep);
        }
    }
}

/// Are the two bag expressions definitely equal under the congruence closure?
pub fn definitely_equal(a: &Expr, b: &Expr, cc: &mut Congruence) -> bool {
    let mut na = normalize(a, cc);
    let mut nb = normalize(b, cc);
    // Cancel common atoms and elements so that leftover structure must match
    // exactly.
    cancel(&mut na.elems, &mut nb.elems);
    cancel(&mut na.atoms, &mut nb.atoms);
    na.elems.is_empty() && nb.elems.is_empty() && na.atoms.is_empty() && nb.atoms.is_empty()
}

fn cancel(a: &mut BTreeMap<TermId, u64>, b: &mut BTreeMap<TermId, u64>) {
    let keys: Vec<TermId> = a.keys().copied().collect();
    for k in keys {
        if let Some(vb) = b.get_mut(&k) {
            let va = a.get_mut(&k).unwrap();
            let common = (*va).min(*vb);
            *va -= common;
            *vb -= common;
        }
    }
    a.retain(|_, v| *v > 0);
    b.retain(|_, v| *v > 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;
    use crate::simplify::simplify;

    #[test]
    fn bag_of_literal_sequences_with_same_elements() {
        let mut cc = Congruence::new();
        let a = Expr::bag_of(Expr::seq(vec![Expr::Int(1), Expr::Int(2)]));
        let b = Expr::bag_of(Expr::seq(vec![Expr::Int(2), Expr::Int(1)]));
        assert!(definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn different_multiplicities_are_not_equal() {
        let mut cc = Congruence::new();
        let a = Expr::bag_of(Expr::seq(vec![Expr::Int(1), Expr::Int(1)]));
        let b = Expr::bag_of(Expr::seq(vec![Expr::Int(1)]));
        assert!(!definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn concat_commutes_under_bag() {
        let mut g = VarGen::new();
        let mut cc = Congruence::new();
        let xs = g.fresh_expr();
        let ys = g.fresh_expr();
        let a = Expr::bag_of(Expr::seq_concat(xs.clone(), ys.clone()));
        let b = Expr::bag_of(Expr::seq_concat(ys, xs));
        assert!(definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn singleton_prepend_matches_snoc() {
        let mut g = VarGen::new();
        let mut cc = Congruence::new();
        let x = g.fresh_expr();
        let xs = g.fresh_expr();
        let a = Expr::bag_of(Expr::seq_prepend(x.clone(), xs.clone()));
        let b = Expr::bag_of(Expr::seq_snoc(xs, x));
        assert!(definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn congruence_equalities_are_used() {
        let mut g = VarGen::new();
        let mut cc = Congruence::new();
        let x = g.fresh_expr();
        let y = g.fresh_expr();
        cc.assert_eq_exprs(&x, &y);
        let a = Expr::bag_of(Expr::seq(vec![x]));
        let b = Expr::bag_of(Expr::seq(vec![y]));
        assert!(definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn unrelated_bags_are_not_equal() {
        let mut g = VarGen::new();
        let mut cc = Congruence::new();
        let xs = g.fresh_expr();
        let ys = g.fresh_expr();
        let a = Expr::bag_of(xs);
        let b = Expr::bag_of(ys);
        assert!(!definitely_equal(&a, &b, &mut cc));
    }

    #[test]
    fn simplified_bag_of_concat_still_normalises() {
        let mut g = VarGen::new();
        let mut cc = Congruence::new();
        let xs = g.fresh_expr();
        let a = simplify(&Expr::bag_of(Expr::seq_concat(
            Expr::seq(vec![Expr::Int(3)]),
            xs.clone(),
        )));
        let b = Expr::bag_of(Expr::seq_concat(xs, Expr::seq(vec![Expr::Int(3)])));
        assert!(definitely_equal(&a, &b, &mut cc));
    }
}
