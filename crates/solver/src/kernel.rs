//! The refutation kernel shared by every solver backend.
//!
//! A query arrives as a set of literals (already simplified and split out of
//! top-level conjunctions). The kernel case-splits on disjunctive structure
//! and runs congruence closure, constructor reasoning, linear integer
//! arithmetic, sequence-length abstraction and multiset normalisation on each
//! leaf case. It is *sound for refutation*: `true` means the literals are
//! genuinely unsatisfiable; `false` means "could not refute".
//!
//! The kernel is a pure function of its inputs; how literals are accumulated
//! (one-shot per query, incrementally at assert time, through a cache) is the
//! backends' business ([`crate::backend`]).

use crate::bags;
use crate::congruence::{CcSnapshot, Congruence};
use crate::expr::{BinOp, Expr, UnOp};
use crate::linear::{LinSnapshot, Linear};
use crate::simplify::simplify;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The outcome of one kernel run.
#[derive(Clone, Copy, Debug)]
pub struct RefuteOutcome {
    /// Were the literals refuted (definitely unsatisfiable)?
    pub refuted: bool,
    /// Number of leaf conjunctions explored (the "raw work" measure used by
    /// the ablation benchmarks).
    pub leaf_cases: u64,
    /// Did the search give up because the case budget ran out? A
    /// budget-exhausted "could not refute" is the only kernel answer that
    /// depends on literal order (which disjunct the budget dies in); complete
    /// searches explore the same leaf set in any order. Callers that cache
    /// results under order-insensitive keys must not cache exhausted runs.
    pub budget_exhausted: bool,
}

/// Attempts to refute the conjunction of `literals` within `case_budget`
/// leaf cases.
pub fn refute(literals: &[Arc<Expr>], case_budget: usize) -> RefuteOutcome {
    let mut budget = case_budget;
    let mut leaf_cases = 0u64;
    let mut exhausted = false;
    let refuted = refute_cases(literals, &mut budget, &mut leaf_cases, &mut exhausted);
    RefuteOutcome {
        refuted,
        leaf_cases,
        budget_exhausted: exhausted,
    }
}

/// Splits nested conjunctions into individual literals. Sets
/// `definitely_false` when a literal simplifies to `false`.
pub fn flatten_conjuncts(e: &Expr, out: &mut Vec<Arc<Expr>>, definitely_false: &mut bool) {
    match e {
        Expr::Bool(true) => {}
        Expr::Bool(false) => *definitely_false = true,
        Expr::BinOp(BinOp::And, a, b) => {
            flatten_conjuncts(a, out, definitely_false);
            flatten_conjuncts(b, out, definitely_false);
        }
        _ => out.push(Arc::new(e.clone())),
    }
}

/// Like [`flatten_conjuncts`], but reuses the shared allocation when the
/// expression is already a single literal (the common case on the hot path).
pub fn flatten_shared(e: &Arc<Expr>, out: &mut Vec<Arc<Expr>>, definitely_false: &mut bool) {
    match e.as_ref() {
        Expr::Bool(true) => {}
        Expr::Bool(false) => *definitely_false = true,
        Expr::BinOp(BinOp::And, a, b) => {
            flatten_conjuncts(a, out, definitely_false);
            flatten_conjuncts(b, out, definitely_false);
        }
        _ => out.push(Arc::clone(e)),
    }
}

/// The case split applied to a disjunctive literal, shared by the batch
/// refutation and the incremental state so both explore the same cases:
/// `a ∨ b` splits into its arms, `a ⟹ b` into `¬a | b`, an arithmetic
/// disequality into the two strict orders (so the linear module can refute
/// each), and a boolean-sorted `ite` into its two guarded arms. `None`
/// means the literal is a unit fact for the theories.
pub fn split_of(lit: &Expr) -> Option<(Expr, Expr)> {
    match lit {
        Expr::BinOp(BinOp::Or, a, b) => Some(((**a).clone(), (**b).clone())),
        Expr::BinOp(BinOp::Implies, a, b) => {
            Some((simplify(&Expr::not((**a).clone())), (**b).clone()))
        }
        // Integer disequalities split into strict inequalities so that
        // the linear module can refute them (e.g. `x + 1 != 1 + y`
        // under `x == y`).
        Expr::BinOp(BinOp::Ne, a, b) if is_arith_like(a) || is_arith_like(b) => Some((
            Expr::bin(BinOp::Lt, (**a).clone(), (**b).clone()),
            Expr::bin(BinOp::Lt, (**b).clone(), (**a).clone()),
        )),
        Expr::Ite(c, t, e) => {
            // A boolean-sorted ite used as a fact.
            Some((
                Expr::and((**c).clone(), (**t).clone()),
                Expr::and(simplify(&Expr::not((**c).clone())), (**e).clone()),
            ))
        }
        _ => None,
    }
}

/// Recursively case-splits on disjunctive literals, refuting every case.
fn refute_cases(
    literals: &[Arc<Expr>],
    budget: &mut usize,
    leaf_cases: &mut u64,
    exhausted: &mut bool,
) -> bool {
    if *budget == 0 {
        *exhausted = true;
        return false;
    }
    // Find a disjunctive literal to split on.
    for (idx, lit) in literals.iter().enumerate() {
        if let Some((left, right)) = split_of(lit) {
            let mut rest: Vec<Arc<Expr>> = literals.to_vec();
            rest.remove(idx);
            for case in [left, right] {
                let mut case_literals = rest.clone();
                let mut definitely_false = false;
                flatten_conjuncts(&simplify(&case), &mut case_literals, &mut definitely_false);
                if definitely_false {
                    continue;
                }
                if !refute_cases(&case_literals, budget, leaf_cases, exhausted) {
                    return false;
                }
            }
            return true;
        }
    }
    if *budget > 0 {
        *budget -= 1;
    }
    *leaf_cases += 1;
    refute_conjunction(literals)
}

/// Attempts to refute a conjunction of non-disjunctive literals.
fn refute_conjunction(literals: &[Arc<Expr>]) -> bool {
    let mut cc = Congruence::new();
    let mut disequalities: Vec<(Expr, Expr)> = Vec::new();
    let mut negated_atoms: Vec<Expr> = Vec::new();

    // Pass 1: equalities and boolean atoms into the congruence closure.
    for lit in literals {
        match lit.as_ref() {
            Expr::Bool(false) => return true,
            Expr::Bool(true) => {}
            Expr::BinOp(BinOp::Eq, a, b) => {
                let ta = cc.intern(a);
                let tb = cc.intern(b);
                cc.merge(ta, tb);
            }
            Expr::BinOp(BinOp::Ne, a, b) => {
                disequalities.push(((**a).clone(), (**b).clone()));
                let _ = cc.intern(a);
                let _ = cc.intern(b);
            }
            Expr::UnOp(UnOp::Not, inner) => {
                negated_atoms.push((**inner).clone());
                let ti = cc.intern(inner);
                let tf = cc.intern(&Expr::Bool(false));
                cc.merge(ti, tf);
            }
            other => {
                // Assert the atom itself to be true.
                let ti = cc.intern(other);
                let tt = cc.intern(&Expr::Bool(true));
                cc.merge(ti, tt);
            }
        }
    }
    cc.rebuild();
    if cc.contradictory() {
        return true;
    }

    // Disequality check against the closure.
    for (a, b) in &disequalities {
        if cc.are_equal(a, b) {
            return true;
        }
        // Bag disequalities: refute when both sides normalise identically.
        if (bags::is_bag_expr(a) || bags::is_bag_expr(b)) && bags::definitely_equal(a, b, &mut cc) {
            return true;
        }
    }
    // An atom asserted both positively and negatively.
    for atom in &negated_atoms {
        if cc.are_equal(atom, &Expr::Bool(true)) {
            return true;
        }
    }
    if cc.contradictory() {
        return true;
    }

    // Pass 2: linear arithmetic.
    let mut lin = Linear::new();
    let mut derived_len_eqs: Vec<Expr> = Vec::new();
    for lit in literals {
        match lit.as_ref() {
            Expr::BinOp(BinOp::Lt, a, b) => lin.add_lt(a, b, &mut cc),
            Expr::BinOp(BinOp::Le, a, b) => lin.add_le(a, b, &mut cc),
            Expr::BinOp(BinOp::Gt, a, b) => lin.add_lt(b, a, &mut cc),
            Expr::BinOp(BinOp::Ge, a, b) => lin.add_le(b, a, &mut cc),
            Expr::BinOp(BinOp::Eq, a, b) => lin.add_eq(a, b, &mut cc),
            Expr::UnOp(UnOp::Not, inner) => match inner.as_ref() {
                Expr::BinOp(BinOp::Lt, a, b) => lin.add_le(b, a, &mut cc),
                Expr::BinOp(BinOp::Le, a, b) => lin.add_lt(b, a, &mut cc),
                _ => {}
            },
            _ => {}
        }
        // Sequence equalities imply length equalities.
        if let Expr::BinOp(BinOp::Eq, a, b) = lit.as_ref() {
            if is_seq_structured(a) || is_seq_structured(b) {
                let la = simplify(&Expr::seq_len((**a).clone()));
                let lb = simplify(&Expr::seq_len((**b).clone()));
                lin.add_eq(&la, &lb, &mut cc);
                derived_len_eqs.push(la);
                derived_len_eqs.push(lb);
            }
        }
    }
    // Length terms are non-negative — including the ones that only appear
    // in *derived* length equalities (e.g. `repr == [v] ++ tail` derives
    // `len(repr) == 1 + len(tail)`; without `len(tail) >= 0` the system
    // cannot conclude `len(repr) >= 1`, which is exactly what underflow
    // checks like `len - 1` need).
    let mut len_terms: Vec<Expr> = Vec::new();
    for lit in literals {
        lit.visit(&mut |e| {
            if matches!(e, Expr::UnOp(UnOp::SeqLen, _)) {
                len_terms.push(e.clone());
            }
        });
    }
    for e in &derived_len_eqs {
        e.visit(&mut |sub| {
            if matches!(sub, Expr::UnOp(UnOp::SeqLen, _)) {
                len_terms.push(sub.clone());
            }
        });
    }
    len_terms.sort_by_key(|e| format!("{e}"));
    len_terms.dedup();
    for t in &len_terms {
        lin.add_nonneg(t, &mut cc);
    }
    lin.solve();
    if lin.contradictory() {
        return true;
    }

    false
}

// ---------------------------------------------------------------------------
// Persistent incremental theory state
// ---------------------------------------------------------------------------

/// The outcome of one incremental [`IncrementalState::check`].
#[derive(Clone, Copy, Debug)]
pub struct IncOutcome {
    /// Were the asserted literals refuted (definitely unsatisfiable)?
    pub refuted: bool,
    /// Leaf conjunctions explored by the disjunctive case split (0 when the
    /// answer came straight from the maintained closure).
    pub leaf_cases: u64,
    /// Did the case split give up because the budget ran out?
    pub budget_exhausted: bool,
    /// Was the query answered from the maintained theory state alone,
    /// without running the case split?
    pub fast: bool,
}

/// One decomposed case of a disjunctive literal: the unit facts to assert
/// and the nested disjuncts still to split.
#[derive(Clone, Debug)]
struct SplitCase {
    units: Vec<Arc<Expr>>,
    splits: Vec<Arc<Expr>>,
}

/// The decomposition of one disjunctive literal; `None` marks a case whose
/// conjunction simplifies to `false` (refuted without exploring).
type Decomp = Vec<Option<SplitCase>>;

/// A restore point for the whole theory state.
#[derive(Clone, Debug)]
struct StateMark {
    cc: CcSnapshot,
    lin: LinSnapshot,
    units: usize,
    disjuncts: usize,
    diseqs: usize,
    negs: usize,
    len_terms: usize,
    memo_keys: usize,
    contradiction: bool,
    ground_at: usize,
    merges_scanned: usize,
    lin_stale: bool,
    lin_epoch: u64,
}

/// Persistent incremental theory state: the congruence closure and linear
/// context are maintained **across queries** as literals are asserted, with
/// an undo trail so `push`/`pop` restore exact state in O(changes) instead
/// of O(context).
///
/// * Unit literals do their theory work once, at assert time (congruence
///   merges, disequality registration, linear rows, derived sequence-length
///   facts).
/// * `check` consults the maintained closure; only when *disjunctive*
///   literals are present does it re-run the case split over them, asserting
///   each case's units into the same trail-scoped state (and memoising each
///   disjunct's decomposition, so an unchanged disjunct is never re-split).
/// * **Soundness** (refuted ⇒ genuinely unsat) is preserved because every
///   maintained fact is a logical consequence of literals currently on the
///   assertion stack: congruence merges and Fourier–Motzkin rows derived in
///   a scope are rolled back with it, and linear atom keys are protected by
///   a staleness watch — when a congruence merge absorbs a class that
///   carries linear atoms, the linear context is rebuilt from the live
///   unit literals (batch-equivalent keying) instead of trusting stale keys.
/// * **Completeness is one-sided versus the batch kernel.** The maintained
///   store keeps *sound* derivations across queries, so N solves accumulate
///   up to N × the per-solve Fourier–Motzkin round cap while a batch
///   backend gets one cap's worth per query. On derivation chains longer
///   than a single solve's reach this state can therefore refute/entail
///   strictly **more** than one-shot/eager — never less, and never
///   unsoundly (a flipped verdict is always in the proves-more direction).
///   Cross-backend agreement suites must stay within single-solve reach
///   (the differential test and scale bench do, by construction) or accept
///   the one-sided direction.
#[derive(Clone, Debug, Default)]
pub struct IncrementalState {
    cc: Congruence,
    lin: Linear,
    /// Every unit literal currently asserted, in order — the linear rebuild
    /// source after an atom-class merge.
    units: Vec<Arc<Expr>>,
    /// Splittable literals (`∨`, `⟹`, arithmetic `≠`, boolean `ite`),
    /// decomposed lazily at check time.
    disjuncts: Vec<Arc<Expr>>,
    /// Asserted disequality literals, re-checked against the closure
    /// whenever it grows.
    diseqs: Vec<Arc<Expr>>,
    /// Asserted negated atoms, re-checked likewise.
    negs: Vec<Arc<Expr>>,
    /// Sequence-length terms registered for non-negativity, with exact undo
    /// (`len_seen` mirrors the vector as a set).
    len_terms: Vec<Expr>,
    len_seen: HashSet<Expr>,
    /// The theory verdict for the current unit set (monotone within a
    /// scope; restored on pop).
    contradiction: bool,
    /// Merge-log length at the last ground (disequality/negation) recheck.
    ground_at: usize,
    /// Merge-log length up to which the linear staleness watch has scanned.
    merges_scanned: usize,
    /// Set when a merge united two linear atom classes: the linear context
    /// is rebuilt from `units` at the next check.
    lin_stale: bool,
    /// Bumped at every linear rebuild; a pop across a rebuild cannot
    /// truncate the rebuilt vector, so it resets and re-marks stale.
    lin_epoch: u64,
    scopes: Vec<StateMark>,
    /// Memoised decompositions, keyed by literal allocation (the held `Arc`
    /// keeps the address stable and unique). Evicted with the scope that
    /// first decomposed the literal (`memo_keys` + the mark's length), so
    /// the map — copied into every branch clone — stays bounded by the
    /// *live* disjuncts instead of every disjunct ever seen.
    split_memo: HashMap<usize, (Arc<Expr>, Arc<Decomp>)>,
    /// Insertion order of `split_memo` keys, for scope-based eviction.
    memo_keys: Vec<usize>,
}

impl IncrementalState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the current unit set already known contradictory? (Cheap; the
    /// full verdict — including the disjunctive case split — is
    /// [`IncrementalState::check`].)
    pub fn known_contradictory(&self) -> bool {
        self.contradiction
    }

    /// Opens a scope: later assertions are rolled back by the matching
    /// [`IncrementalState::pop`].
    pub fn push(&mut self) {
        let m = self.mark();
        self.scopes.push(m);
    }

    /// Closes the innermost scope, restoring the exact prior theory state.
    pub fn pop(&mut self) {
        if let Some(m) = self.scopes.pop() {
            self.undo_to_mark(m);
        }
    }

    /// Poisons the current scope (a literal simplified to `false`).
    pub fn set_false(&mut self) {
        self.contradiction = true;
    }

    /// Asserts one simplified, conjunction-free literal.
    pub fn assert_lit(&mut self, lit: &Arc<Expr>) {
        match lit.as_ref() {
            Expr::Bool(true) => return,
            Expr::Bool(false) => {
                self.contradiction = true;
                return;
            }
            _ => {}
        }
        if split_of(lit).is_some() {
            self.disjuncts.push(Arc::clone(lit));
        } else {
            self.assert_unit(lit);
        }
    }

    /// Answers "is the conjunction of everything asserted definitely
    /// unsatisfiable?" from the maintained state, case-splitting only over
    /// the disjunctive literals.
    pub fn check(&mut self, case_budget: usize) -> IncOutcome {
        self.settle();
        if self.contradiction {
            return IncOutcome {
                refuted: true,
                leaf_cases: 0,
                budget_exhausted: false,
                fast: true,
            };
        }
        if self.disjuncts.is_empty() {
            return IncOutcome {
                refuted: false,
                leaf_cases: 0,
                budget_exhausted: false,
                fast: true,
            };
        }
        let mut budget = case_budget;
        let mut leaves = 0u64;
        let mut exhausted = false;
        let pending = self.disjuncts.clone();
        let refuted = self.split(&pending, &mut budget, &mut leaves, &mut exhausted);
        IncOutcome {
            refuted,
            leaf_cases: leaves,
            budget_exhausted: exhausted,
            fast: false,
        }
    }

    // ---- internals ------------------------------------------------------

    fn mark(&self) -> StateMark {
        StateMark {
            cc: self.cc.snapshot(),
            lin: self.lin.snapshot(),
            units: self.units.len(),
            disjuncts: self.disjuncts.len(),
            diseqs: self.diseqs.len(),
            negs: self.negs.len(),
            len_terms: self.len_terms.len(),
            memo_keys: self.memo_keys.len(),
            contradiction: self.contradiction,
            ground_at: self.ground_at,
            merges_scanned: self.merges_scanned,
            lin_stale: self.lin_stale,
            lin_epoch: self.lin_epoch,
        }
    }

    fn undo_to_mark(&mut self, m: StateMark) {
        self.cc.undo_to(&m.cc);
        if self.lin_epoch == m.lin_epoch {
            self.lin.undo_to(&m.lin);
            self.lin_stale = m.lin_stale;
        } else {
            // A rebuild happened inside the scope: the constraint vector no
            // longer corresponds to the snapshot's indices. Drop it and
            // rebuild lazily from the surviving units at the next check.
            // (`lin_epoch` is NOT restored — it is monotone, so outer marks
            // also detect that their snapshots are invalid.)
            self.lin = Linear::new();
            self.lin_stale = true;
        }
        self.units.truncate(m.units);
        self.disjuncts.truncate(m.disjuncts);
        self.diseqs.truncate(m.diseqs);
        self.negs.truncate(m.negs);
        while self.len_terms.len() > m.len_terms {
            let t = self.len_terms.pop().unwrap();
            self.len_seen.remove(&t);
        }
        while self.memo_keys.len() > m.memo_keys {
            let k = self.memo_keys.pop().unwrap();
            self.split_memo.remove(&k);
        }
        self.contradiction = m.contradiction;
        self.ground_at = m.ground_at;
        self.merges_scanned = m.merges_scanned;
    }

    /// Pass-1 + pass-2 theory work for one unit literal, done once at
    /// assert time.
    fn assert_unit(&mut self, lit: &Arc<Expr>) {
        self.units.push(Arc::clone(lit));
        if self.contradiction {
            // Already refuted at this scope depth: skipping the theory work
            // is safe because any pop that unwinds the contradiction also
            // unwinds this literal (it sits above the same mark).
            return;
        }
        match lit.as_ref() {
            Expr::BinOp(BinOp::Eq, a, b) => {
                let ta = self.cc.intern(a);
                let tb = self.cc.intern(b);
                self.cc.merge(ta, tb);
            }
            Expr::BinOp(BinOp::Ne, a, b) => {
                self.diseqs.push(Arc::clone(lit));
                // A fresh disequality is checked right away (the periodic
                // recheck only fires when the closure *grows*, and this
                // pair may already be equal — e.g. bag normal forms).
                if self.cc.are_equal(a, b)
                    || ((bags::is_bag_expr(a) || bags::is_bag_expr(b))
                        && bags::definitely_equal(a, b, &mut self.cc))
                {
                    self.contradiction = true;
                    return;
                }
            }
            Expr::UnOp(UnOp::Not, inner) => {
                self.negs.push(Arc::clone(lit));
                let ti = self.cc.intern(inner);
                let tf = self.cc.intern(&Expr::Bool(false));
                self.cc.merge(ti, tf);
            }
            other => {
                let ti = self.cc.intern(other);
                let tt = self.cc.intern(&Expr::Bool(true));
                self.cc.merge(ti, tt);
            }
        }
        self.cc.rebuild();
        if self.cc.contradictory() {
            self.contradiction = true;
            return;
        }
        self.linear_rows_for(&Arc::clone(lit), true);
        if self.lin.contradictory() {
            self.contradiction = true;
        }
    }

    /// The linear constraints contributed by one literal (mirrors the batch
    /// kernel's pass 2). `register` also records fresh sequence-length terms
    /// for non-negativity; the linear rebuild passes `false` and replays the
    /// recorded list instead.
    fn linear_rows_for(&mut self, lit: &Arc<Expr>, register: bool) {
        match lit.as_ref() {
            Expr::BinOp(BinOp::Lt, a, b) => self.lin.add_lt(a, b, &mut self.cc),
            Expr::BinOp(BinOp::Le, a, b) => self.lin.add_le(a, b, &mut self.cc),
            Expr::BinOp(BinOp::Gt, a, b) => self.lin.add_lt(b, a, &mut self.cc),
            Expr::BinOp(BinOp::Ge, a, b) => self.lin.add_le(b, a, &mut self.cc),
            Expr::BinOp(BinOp::Eq, a, b) => self.lin.add_eq(a, b, &mut self.cc),
            Expr::UnOp(UnOp::Not, inner) => match inner.as_ref() {
                Expr::BinOp(BinOp::Lt, a, b) => self.lin.add_le(b, a, &mut self.cc),
                Expr::BinOp(BinOp::Le, a, b) => self.lin.add_lt(b, a, &mut self.cc),
                _ => {}
            },
            _ => {}
        }
        if let Expr::BinOp(BinOp::Eq, a, b) = lit.as_ref() {
            if is_seq_structured(a) || is_seq_structured(b) {
                let la = simplify(&Expr::seq_len((**a).clone()));
                let lb = simplify(&Expr::seq_len((**b).clone()));
                self.lin.add_eq(&la, &lb, &mut self.cc);
                if register {
                    self.register_lens(&la);
                    self.register_lens(&lb);
                }
            }
        }
        if register {
            let lit = Arc::clone(lit);
            self.register_lens(&lit);
        }
    }

    /// Records every sequence-length sub-term of `e` not yet seen, asserting
    /// its non-negativity.
    fn register_lens(&mut self, e: &Expr) {
        let mut found: Vec<Expr> = Vec::new();
        e.visit(&mut |sub| {
            if matches!(sub, Expr::UnOp(UnOp::SeqLen, _)) && !self.len_seen.contains(sub) {
                found.push(sub.clone());
            }
        });
        for t in found {
            if self.len_seen.insert(t.clone()) {
                self.len_terms.push(t.clone());
                self.lin.add_nonneg(&t, &mut self.cc);
            }
        }
    }

    /// Scans merges the staleness watch has not seen yet: any merge that
    /// absorbs a class carrying linear atom keys invalidates the linear
    /// keying — rows referencing the absorbed root can no longer meet rows
    /// keyed under the surviving representative (even when the surviving
    /// class carried no atoms *yet*: future rows will be keyed under it),
    /// so the linear context must be rebuilt from the live units. A merge
    /// whose absorbed class carries no atoms references no linear row and
    /// is safe.
    fn process_merges(&mut self) {
        let log = self.cc.merge_log();
        if self.merges_scanned >= log.len() {
            return;
        }
        let fresh: Vec<_> = log[self.merges_scanned..].to_vec();
        self.merges_scanned = log.len();
        for (_keep, absorb) in fresh {
            if self.lin.is_atom(absorb) {
                self.lin_stale = true;
                break;
            }
        }
    }

    /// Rebuilds the linear context from the live unit literals, keying every
    /// atom by its *current* congruence representative — exactly what the
    /// batch kernel computes for the same conjunction.
    fn rebuild_linear(&mut self) {
        self.lin_epoch += 1;
        self.lin_stale = false;
        self.merges_scanned = self.cc.merge_log().len();
        self.lin = Linear::new();
        let units = self.units.clone();
        for u in &units {
            self.linear_rows_for(u, false);
        }
        let lens = self.len_terms.clone();
        for t in &lens {
            self.lin.add_nonneg(t, &mut self.cc);
        }
    }

    /// Re-checks all asserted disequalities and negated atoms against the
    /// (grown) closure.
    fn recheck_ground(&mut self) {
        self.ground_at = self.cc.merge_log().len();
        let diseqs = self.diseqs.clone();
        for d in &diseqs {
            let Expr::BinOp(BinOp::Ne, a, b) = d.as_ref() else {
                continue;
            };
            if self.cc.are_equal(a, b) {
                self.contradiction = true;
                return;
            }
            if (bags::is_bag_expr(a) || bags::is_bag_expr(b))
                && bags::definitely_equal(a, b, &mut self.cc)
            {
                self.contradiction = true;
                return;
            }
        }
        let negs = self.negs.clone();
        for n in &negs {
            let Expr::UnOp(UnOp::Not, inner) = n.as_ref() else {
                continue;
            };
            if self.cc.are_equal(inner, &Expr::Bool(true)) {
                self.contradiction = true;
                return;
            }
        }
        if self.cc.contradictory() {
            self.contradiction = true;
        }
    }

    /// Brings every maintained theory up to date with the current unit set.
    fn settle(&mut self) {
        if self.contradiction {
            return;
        }
        self.cc.rebuild();
        if self.cc.contradictory() {
            self.contradiction = true;
            return;
        }
        if self.ground_at < self.cc.merge_log().len() {
            self.recheck_ground();
            if self.contradiction {
                return;
            }
        }
        // Linear: watch for stale atom keys or a saturated store with
        // uncombined rows, rebuild if needed (bounded — a rebuild can
        // itself trigger normalisation merges), then solve.
        self.process_merges();
        if self.lin.needs_rebuild() {
            self.lin_stale = true;
        }
        for _ in 0..2 {
            if !self.lin_stale {
                break;
            }
            self.rebuild_linear();
            self.process_merges();
        }
        self.lin.solve();
        if self.lin.contradictory() {
            self.contradiction = true;
            return;
        }
        // A linear rebuild may have interned/normalised new terms into the
        // closure; give the ground facts one more look if it moved.
        if self.ground_at < self.cc.merge_log().len() {
            self.recheck_ground();
        }
    }

    /// The memoised decomposition of one disjunctive literal.
    fn decompose(&mut self, lit: &Arc<Expr>) -> Arc<Decomp> {
        let key = Arc::as_ptr(lit) as usize;
        if let Some((held, d)) = self.split_memo.get(&key) {
            if Arc::ptr_eq(held, lit) {
                return Arc::clone(d);
            }
        }
        let (left, right) = split_of(lit).expect("only splittable literals are decomposed");
        let mut out: Decomp = Vec::with_capacity(2);
        for side in [left, right] {
            let mut lits: Vec<Arc<Expr>> = Vec::new();
            let mut definitely_false = false;
            flatten_conjuncts(&simplify(&side), &mut lits, &mut definitely_false);
            if definitely_false {
                out.push(None);
                continue;
            }
            let mut units = Vec::new();
            let mut splits = Vec::new();
            for l in lits {
                if split_of(&l).is_some() {
                    splits.push(l);
                } else {
                    units.push(l);
                }
            }
            out.push(Some(SplitCase { units, splits }));
        }
        let d = Arc::new(out);
        if self
            .split_memo
            .insert(key, (Arc::clone(lit), Arc::clone(&d)))
            .is_none()
        {
            self.memo_keys.push(key);
        }
        d
    }

    /// The case split over pending disjuncts, exploring each combination on
    /// top of the maintained state (assert into a trail scope, recurse,
    /// undo). Mirrors the batch kernel's exploration order: first pending
    /// disjunct first, nested disjuncts appended behind the remaining ones.
    fn split(
        &mut self,
        pending: &[Arc<Expr>],
        budget: &mut usize,
        leaves: &mut u64,
        exhausted: &mut bool,
    ) -> bool {
        if *budget == 0 {
            *exhausted = true;
            return false;
        }
        let Some((first, rest)) = pending.split_first() else {
            // Leaf: the maintained theories decide this combination.
            *budget -= 1;
            *leaves += 1;
            self.settle();
            return self.contradiction;
        };
        let decomp = self.decompose(first);
        // Pre-warm the memo for the remaining pending disjuncts *outside*
        // the per-case marks below: their entries would otherwise be
        // created inside the first case's scope and evicted by its undo,
        // forcing every sibling case to re-split them.
        for p in rest {
            let _ = self.decompose(p);
        }
        for case in decomp.iter() {
            let Some(case) = case else {
                // The case simplified to `false`: refuted without exploring.
                continue;
            };
            let m = self.mark();
            for u in &case.units {
                self.assert_unit(u);
            }
            let result = if self.contradiction {
                // The theories refuted this case while asserting its units:
                // the whole subtree below it is refuted at the cost of one
                // leaf instead of the batch kernel's full expansion.
                if *budget > 0 {
                    *budget -= 1;
                }
                *leaves += 1;
                true
            } else {
                let mut sub: Vec<Arc<Expr>> = Vec::with_capacity(rest.len() + case.splits.len());
                sub.extend(rest.iter().cloned());
                sub.extend(case.splits.iter().cloned());
                self.split(&sub, budget, leaves, exhausted)
            };
            self.undo_to_mark(m);
            if !result {
                return false;
            }
        }
        true
    }
}

/// Does the expression look integer-sorted (contains arithmetic structure,
/// an integer literal or a sequence length)?
fn is_arith_like(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |sub| {
        if matches!(
            sub,
            Expr::Int(_)
                | Expr::BinOp(BinOp::Add, _, _)
                | Expr::BinOp(BinOp::Sub, _, _)
                | Expr::BinOp(BinOp::Mul, _, _)
                | Expr::UnOp(UnOp::SeqLen, _)
                | Expr::UnOp(UnOp::Neg, _)
        ) {
            found = true;
        }
    });
    found
}

/// Does this expression have visible sequence structure?
fn is_seq_structured(e: &Expr) -> bool {
    matches!(
        e,
        Expr::SeqLit(_)
            | Expr::BinOp(BinOp::SeqConcat, _, _)
            | Expr::BinOp(BinOp::SeqRepeat, _, _)
            | Expr::NOp(_, _)
    )
}
