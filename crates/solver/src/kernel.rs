//! The refutation kernel shared by every solver backend.
//!
//! A query arrives as a set of literals (already simplified and split out of
//! top-level conjunctions). The kernel case-splits on disjunctive structure
//! and runs congruence closure, constructor reasoning, linear integer
//! arithmetic, sequence-length abstraction and multiset normalisation on each
//! leaf case. It is *sound for refutation*: `true` means the literals are
//! genuinely unsatisfiable; `false` means "could not refute".
//!
//! The kernel is a pure function of its inputs; how literals are accumulated
//! (one-shot per query, incrementally at assert time, through a cache) is the
//! backends' business ([`crate::backend`]).

use crate::bags;
use crate::congruence::Congruence;
use crate::expr::{BinOp, Expr, UnOp};
use crate::linear::Linear;
use crate::simplify::simplify;
use std::sync::Arc;

/// The outcome of one kernel run.
#[derive(Clone, Copy, Debug)]
pub struct RefuteOutcome {
    /// Were the literals refuted (definitely unsatisfiable)?
    pub refuted: bool,
    /// Number of leaf conjunctions explored (the "raw work" measure used by
    /// the ablation benchmarks).
    pub leaf_cases: u64,
    /// Did the search give up because the case budget ran out? A
    /// budget-exhausted "could not refute" is the only kernel answer that
    /// depends on literal order (which disjunct the budget dies in); complete
    /// searches explore the same leaf set in any order. Callers that cache
    /// results under order-insensitive keys must not cache exhausted runs.
    pub budget_exhausted: bool,
}

/// Attempts to refute the conjunction of `literals` within `case_budget`
/// leaf cases.
pub fn refute(literals: &[Arc<Expr>], case_budget: usize) -> RefuteOutcome {
    let mut budget = case_budget;
    let mut leaf_cases = 0u64;
    let mut exhausted = false;
    let refuted = refute_cases(literals, &mut budget, &mut leaf_cases, &mut exhausted);
    RefuteOutcome {
        refuted,
        leaf_cases,
        budget_exhausted: exhausted,
    }
}

/// Splits nested conjunctions into individual literals. Sets
/// `definitely_false` when a literal simplifies to `false`.
pub fn flatten_conjuncts(e: &Expr, out: &mut Vec<Arc<Expr>>, definitely_false: &mut bool) {
    match e {
        Expr::Bool(true) => {}
        Expr::Bool(false) => *definitely_false = true,
        Expr::BinOp(BinOp::And, a, b) => {
            flatten_conjuncts(a, out, definitely_false);
            flatten_conjuncts(b, out, definitely_false);
        }
        _ => out.push(Arc::new(e.clone())),
    }
}

/// Like [`flatten_conjuncts`], but reuses the shared allocation when the
/// expression is already a single literal (the common case on the hot path).
pub fn flatten_shared(e: &Arc<Expr>, out: &mut Vec<Arc<Expr>>, definitely_false: &mut bool) {
    match e.as_ref() {
        Expr::Bool(true) => {}
        Expr::Bool(false) => *definitely_false = true,
        Expr::BinOp(BinOp::And, a, b) => {
            flatten_conjuncts(a, out, definitely_false);
            flatten_conjuncts(b, out, definitely_false);
        }
        _ => out.push(Arc::clone(e)),
    }
}

/// Recursively case-splits on disjunctive literals, refuting every case.
fn refute_cases(
    literals: &[Arc<Expr>],
    budget: &mut usize,
    leaf_cases: &mut u64,
    exhausted: &mut bool,
) -> bool {
    if *budget == 0 {
        *exhausted = true;
        return false;
    }
    // Find a disjunctive literal to split on.
    for (idx, lit) in literals.iter().enumerate() {
        let split: Option<(Expr, Expr)> = match lit.as_ref() {
            Expr::BinOp(BinOp::Or, a, b) => Some(((**a).clone(), (**b).clone())),
            Expr::BinOp(BinOp::Implies, a, b) => {
                Some((simplify(&Expr::not((**a).clone())), (**b).clone()))
            }
            // Integer disequalities split into strict inequalities so that
            // the linear module can refute them (e.g. `x + 1 != 1 + y`
            // under `x == y`).
            Expr::BinOp(BinOp::Ne, a, b) if is_arith_like(a) || is_arith_like(b) => Some((
                Expr::bin(BinOp::Lt, (**a).clone(), (**b).clone()),
                Expr::bin(BinOp::Lt, (**b).clone(), (**a).clone()),
            )),
            Expr::Ite(c, t, e) => {
                // A boolean-sorted ite used as a fact.
                Some((
                    Expr::and((**c).clone(), (**t).clone()),
                    Expr::and(simplify(&Expr::not((**c).clone())), (**e).clone()),
                ))
            }
            _ => None,
        };
        if let Some((left, right)) = split {
            let mut rest: Vec<Arc<Expr>> = literals.to_vec();
            rest.remove(idx);
            for case in [left, right] {
                let mut case_literals = rest.clone();
                let mut definitely_false = false;
                flatten_conjuncts(&simplify(&case), &mut case_literals, &mut definitely_false);
                if definitely_false {
                    continue;
                }
                if !refute_cases(&case_literals, budget, leaf_cases, exhausted) {
                    return false;
                }
            }
            return true;
        }
    }
    if *budget > 0 {
        *budget -= 1;
    }
    *leaf_cases += 1;
    refute_conjunction(literals)
}

/// Attempts to refute a conjunction of non-disjunctive literals.
fn refute_conjunction(literals: &[Arc<Expr>]) -> bool {
    let mut cc = Congruence::new();
    let mut disequalities: Vec<(Expr, Expr)> = Vec::new();
    let mut negated_atoms: Vec<Expr> = Vec::new();

    // Pass 1: equalities and boolean atoms into the congruence closure.
    for lit in literals {
        match lit.as_ref() {
            Expr::Bool(false) => return true,
            Expr::Bool(true) => {}
            Expr::BinOp(BinOp::Eq, a, b) => {
                let ta = cc.intern(a);
                let tb = cc.intern(b);
                cc.merge(ta, tb);
            }
            Expr::BinOp(BinOp::Ne, a, b) => {
                disequalities.push(((**a).clone(), (**b).clone()));
                let _ = cc.intern(a);
                let _ = cc.intern(b);
            }
            Expr::UnOp(UnOp::Not, inner) => {
                negated_atoms.push((**inner).clone());
                let ti = cc.intern(inner);
                let tf = cc.intern(&Expr::Bool(false));
                cc.merge(ti, tf);
            }
            other => {
                // Assert the atom itself to be true.
                let ti = cc.intern(other);
                let tt = cc.intern(&Expr::Bool(true));
                cc.merge(ti, tt);
            }
        }
    }
    cc.rebuild();
    if cc.contradictory() {
        return true;
    }

    // Disequality check against the closure.
    for (a, b) in &disequalities {
        if cc.are_equal(a, b) {
            return true;
        }
        // Bag disequalities: refute when both sides normalise identically.
        if (bags::is_bag_expr(a) || bags::is_bag_expr(b)) && bags::definitely_equal(a, b, &mut cc) {
            return true;
        }
    }
    // An atom asserted both positively and negatively.
    for atom in &negated_atoms {
        if cc.are_equal(atom, &Expr::Bool(true)) {
            return true;
        }
    }
    if cc.contradictory() {
        return true;
    }

    // Pass 2: linear arithmetic.
    let mut lin = Linear::new();
    let mut derived_len_eqs: Vec<Expr> = Vec::new();
    for lit in literals {
        match lit.as_ref() {
            Expr::BinOp(BinOp::Lt, a, b) => lin.add_lt(a, b, &mut cc),
            Expr::BinOp(BinOp::Le, a, b) => lin.add_le(a, b, &mut cc),
            Expr::BinOp(BinOp::Gt, a, b) => lin.add_lt(b, a, &mut cc),
            Expr::BinOp(BinOp::Ge, a, b) => lin.add_le(b, a, &mut cc),
            Expr::BinOp(BinOp::Eq, a, b) => lin.add_eq(a, b, &mut cc),
            Expr::UnOp(UnOp::Not, inner) => match inner.as_ref() {
                Expr::BinOp(BinOp::Lt, a, b) => lin.add_le(b, a, &mut cc),
                Expr::BinOp(BinOp::Le, a, b) => lin.add_lt(b, a, &mut cc),
                _ => {}
            },
            _ => {}
        }
        // Sequence equalities imply length equalities.
        if let Expr::BinOp(BinOp::Eq, a, b) = lit.as_ref() {
            if is_seq_structured(a) || is_seq_structured(b) {
                let la = simplify(&Expr::seq_len((**a).clone()));
                let lb = simplify(&Expr::seq_len((**b).clone()));
                lin.add_eq(&la, &lb, &mut cc);
                derived_len_eqs.push(la);
                derived_len_eqs.push(lb);
            }
        }
    }
    // Length terms are non-negative — including the ones that only appear
    // in *derived* length equalities (e.g. `repr == [v] ++ tail` derives
    // `len(repr) == 1 + len(tail)`; without `len(tail) >= 0` the system
    // cannot conclude `len(repr) >= 1`, which is exactly what underflow
    // checks like `len - 1` need).
    let mut len_terms: Vec<Expr> = Vec::new();
    for lit in literals {
        lit.visit(&mut |e| {
            if matches!(e, Expr::UnOp(UnOp::SeqLen, _)) {
                len_terms.push(e.clone());
            }
        });
    }
    for e in &derived_len_eqs {
        e.visit(&mut |sub| {
            if matches!(sub, Expr::UnOp(UnOp::SeqLen, _)) {
                len_terms.push(sub.clone());
            }
        });
    }
    len_terms.sort_by_key(|e| format!("{e}"));
    len_terms.dedup();
    for t in &len_terms {
        lin.add_nonneg(t, &mut cc);
    }
    lin.solve();
    if lin.contradictory() {
        return true;
    }

    false
}

/// Does the expression look integer-sorted (contains arithmetic structure,
/// an integer literal or a sequence length)?
fn is_arith_like(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |sub| {
        if matches!(
            sub,
            Expr::Int(_)
                | Expr::BinOp(BinOp::Add, _, _)
                | Expr::BinOp(BinOp::Sub, _, _)
                | Expr::BinOp(BinOp::Mul, _, _)
                | Expr::UnOp(UnOp::SeqLen, _)
                | Expr::UnOp(UnOp::Neg, _)
        ) {
            found = true;
        }
    });
    found
}

/// Does this expression have visible sequence structure?
fn is_seq_structured(e: &Expr) -> bool {
    matches!(
        e,
        Expr::SeqLit(_)
            | Expr::BinOp(BinOp::SeqConcat, _, _)
            | Expr::BinOp(BinOp::SeqRepeat, _, _)
            | Expr::NOp(_, _)
    )
}
