//! # gillian-solver
//!
//! The pure first-order reasoning layer used by the Gillian engine and by
//! creusot-lite. It plays the role that an off-the-shelf SMT solver (Z3) plays
//! for the original Gillian platform and that Why3 plays for Creusot, scoped
//! to the theories the case studies of the paper need:
//!
//! * equality and uninterpreted functions (congruence closure),
//! * algebraic datatype constructors (injectivity + distinctness),
//! * linear integer arithmetic,
//! * sequences (length, concatenation, indexing, sub-sequences, update),
//! * multisets ("bags"), used to discharge `permutation_of` obligations.
//!
//! The solver is *sound for refutation*: `check_unsat` only answers `true`
//! when the facts are genuinely unsatisfiable, and `entails` only answers
//! `true` when the goal genuinely follows. Incompleteness can make
//! verification fail, never succeed wrongly.
//!
//! ```
//! use gillian_solver::{Expr, Solver, VarGen};
//!
//! let mut vars = VarGen::new();
//! let x = vars.fresh_expr();
//! let solver = Solver::new();
//! let facts = vec![Expr::eq(x.clone(), Expr::Int(5))];
//! assert!(solver.entails(&facts, &Expr::lt(Expr::Int(0), x)));
//! ```

pub mod bags;
pub mod congruence;
pub mod expr;
pub mod interp;
pub mod linear;
pub mod simplify;
pub mod solver;
pub mod symbol;

pub use expr::{BinOp, Expr, NOp, SVar, UnOp, VarGen};
pub use interp::{eval, Env, Value};
pub use simplify::simplify;
pub use solver::{SatResult, Solver, SolverStats};
pub use symbol::Symbol;
