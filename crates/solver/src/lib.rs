//! # gillian-solver
//!
//! The pure first-order reasoning layer used by the Gillian engine and by
//! creusot-lite. It plays the role that an off-the-shelf SMT solver (Z3) plays
//! for the original Gillian platform and that Why3 plays for Creusot, scoped
//! to the theories the case studies of the paper need:
//!
//! * equality and uninterpreted functions (congruence closure),
//! * algebraic datatype constructors (injectivity + distinctness),
//! * linear integer arithmetic,
//! * sequences (length, concatenation, indexing, sub-sequences, update),
//! * multisets ("bags"), used to discharge `permutation_of` obligations.
//!
//! The public API is built around two pieces:
//!
//! * a hash-consing [`TermArena`]: expressions are interned once into
//!   copyable [`TermId`]s with memoised simplification and free-variable
//!   sets ([`arena`]);
//! * a pluggable [`SolverBackend`] ([`backend`]) with incremental
//!   `assert`/`push`/`pop` scopes, selected by [`BackendKind`] and driven
//!   through branch-scoped [`SolverCtx`] handles handed out by the shared
//!   [`Solver`] hub.
//!
//! The solver is *sound for refutation*: `check_unsat` only answers `true`
//! when the facts are genuinely unsatisfiable, and `entails` only answers
//! `true` when the goal genuinely follows. Incompleteness can make
//! verification fail, never succeed wrongly.
//!
//! ```
//! use gillian_solver::{Expr, Solver, VarGen};
//!
//! let mut vars = VarGen::new();
//! let x = vars.fresh_expr();
//! let ctx = Solver::new().ctx();
//! ctx.assert_expr(&Expr::eq(x.clone(), Expr::Int(5)));
//! assert!(ctx.entails(&Expr::lt(Expr::Int(0), x)));
//! ```

pub mod arena;
pub mod backend;
pub mod bags;
pub mod congruence;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod linear;
pub mod simplify;
pub mod smtlib;
pub mod solver;
pub mod symbol;

pub use arena::{TermArena, TermId};
pub use backend::{
    entails_by_decomposition, BackendKind, CachingBackend, EagerBackend, IncrementalStateBackend,
    OneShotBackend, SolverBackend, SolverStats,
};
pub use expr::{BinOp, Expr, NOp, SVar, UnOp, VarGen};
pub use interp::{eval, Env, Value};
pub use kernel::IncrementalState;
pub use simplify::simplify;
pub use smtlib::{SmtBackend, SmtCommand, SmtOptions};
pub use solver::{SatResult, Solver, SolverCtx};
pub use symbol::Symbol;
