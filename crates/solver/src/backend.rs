//! Pluggable solver backends.
//!
//! A [`SolverBackend`] owns an assertion stack over interned terms and
//! answers refutation/entailment queries about it. The symbolic-execution
//! engine talks to backends exclusively through [`crate::SolverCtx`]: it
//! pushes a scope at each branch point, asserts new path facts incrementally
//! and queries in place — instead of shipping the whole path condition on
//! every call.
//!
//! Four in-repo backends ship today:
//!
//! * [`OneShotBackend`] — the pre-redesign behaviour: every query re-resolves
//!   and re-simplifies the whole assertion stack from scratch. Kept as the
//!   ablation baseline.
//! * [`EagerBackend`] — incremental *assertion processing*: facts are
//!   simplified (memoised in the [`TermArena`]) and flattened into literals
//!   once, at assert time; a definitely-false assertion short-circuits every
//!   later query in the scope — but every query still re-runs the
//!   refutation kernel over the whole literal set.
//! * [`IncrementalStateBackend`] — incremental *theory state*: a persistent
//!   congruence/linear closure with an undo trail does each literal's theory
//!   work once; queries consult the maintained closure and only re-split
//!   disjunctive literals.
//! * [`CachingBackend`] — a decorator owning a canonicalised query cache: the
//!   key is the **sorted, deduplicated** set of simplified assertion
//!   [`TermId`]s (plus the goal), so `{a, b}` and `{b, a}` hit the same
//!   entry and the cache is shared across branch clones and worker threads.
//!   The default ([`BackendKind::CachedIncremental`]) wraps the
//!   incremental-state backend.
//!
//! Adding a backend (e.g. an SMT-LIB bridge) means implementing the trait's
//! five core operations; `entails` can lean on [`entails_by_decomposition`].

use crate::arena::{TermArena, TermId};
use crate::expr::{BinOp, Expr};
use crate::kernel;
use crate::simplify::simplify;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Statistics collected by the solver layer (exposed per-backend through the
/// verification reports and the ablation benchmarks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of top-level `check_unsat` queries answered.
    pub unsat_queries: u64,
    /// Number of top-level entailment queries answered.
    pub entailment_queries: u64,
    /// Number of leaf conjunctions explored by the refutation kernel (the
    /// "raw work" measure of the ablation).
    pub cases_explored: u64,
    /// Canonical-key cache hits.
    pub cache_hits: u64,
    /// Queries shipped to an external SMT process ([`BackendKind::SmtLib`]
    /// only; the kernel had failed to refute them first).
    pub smt_queries: u64,
    /// External queries answered `unsat` — refutations the kernel alone
    /// could not produce.
    pub smt_unsat: u64,
    /// External solves that timed out or whose process died (each one
    /// kills/respawns the process and abandons its in-flight cache entry).
    pub smt_failures: u64,
    /// Times the SMT bridge came back after a backoff window: spawns had
    /// failed repeatedly and the bridge was resting, then a re-probe
    /// succeeded and external solving resumed (filled from the bridge's
    /// shared spawn-health state, not the per-context counters).
    pub smt_reenabled: u64,
    /// Wall-clock nanoseconds spent inside the refutation kernel (theory
    /// work at assert time plus query-time case splits), summed across
    /// contexts. The denominator for "is the solver the bottleneck?".
    pub kernel_nanos: u64,
    /// Queries answered straight from the maintained incremental theory
    /// state — no kernel re-run, no case split
    /// ([`BackendKind::IncrementalState`] and the backends wrapping it).
    pub incremental_hits: u64,
    /// Verification targets answered from the persistent on-disk proof
    /// cache without re-proving (filled by the driver/daemon, not the
    /// solver: the whole proof was skipped, so no solver work occurred).
    pub disk_cache_hits: u64,
    /// Verification targets that consulted the persistent proof cache and
    /// had to be (re-)proved.
    pub disk_cache_misses: u64,
    /// Verified outcomes written back to the persistent proof cache.
    pub disk_cache_writes: u64,
    /// Branch arms skipped outright because the static value analysis
    /// proved the guard one-sided (filled by the engine's `GotoIf` step:
    /// no solver scope was ever forked for the arm).
    pub branches_pruned_static: u64,
    /// Interval/shape facts from the static value analysis assumed into a
    /// branch's solver context (filled by the engine: each fact tightens
    /// the path condition before any kernel work).
    pub absint_facts_seeded: u64,
}

impl SolverStats {
    /// Field-wise difference (`self - earlier`), used to report the work of
    /// one batch out of the hub's cumulative counters.
    pub fn since(self, earlier: SolverStats) -> SolverStats {
        SolverStats {
            unsat_queries: self.unsat_queries.saturating_sub(earlier.unsat_queries),
            entailment_queries: self
                .entailment_queries
                .saturating_sub(earlier.entailment_queries),
            cases_explored: self.cases_explored.saturating_sub(earlier.cases_explored),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            smt_queries: self.smt_queries.saturating_sub(earlier.smt_queries),
            smt_unsat: self.smt_unsat.saturating_sub(earlier.smt_unsat),
            smt_failures: self.smt_failures.saturating_sub(earlier.smt_failures),
            smt_reenabled: self.smt_reenabled.saturating_sub(earlier.smt_reenabled),
            kernel_nanos: self.kernel_nanos.saturating_sub(earlier.kernel_nanos),
            incremental_hits: self
                .incremental_hits
                .saturating_sub(earlier.incremental_hits),
            disk_cache_hits: self.disk_cache_hits.saturating_sub(earlier.disk_cache_hits),
            disk_cache_misses: self
                .disk_cache_misses
                .saturating_sub(earlier.disk_cache_misses),
            disk_cache_writes: self
                .disk_cache_writes
                .saturating_sub(earlier.disk_cache_writes),
            branches_pruned_static: self
                .branches_pruned_static
                .saturating_sub(earlier.branches_pruned_static),
            absint_facts_seeded: self
                .absint_facts_seeded
                .saturating_sub(earlier.absint_facts_seeded),
        }
    }

    /// Total queries answered (refutation plus entailment).
    pub fn queries(self) -> u64 {
        self.unsat_queries + self.entailment_queries
    }
}

/// Lock-free counters shared by every [`crate::SolverCtx`] handle of a
/// [`crate::Solver`], so parallel workers aggregate without serialising.
#[derive(Debug, Default)]
pub(crate) struct AtomicSolverStats {
    pub(crate) unsat_queries: AtomicU64,
    pub(crate) entailment_queries: AtomicU64,
    pub(crate) cases_explored: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) smt_queries: AtomicU64,
    pub(crate) smt_unsat: AtomicU64,
    pub(crate) smt_failures: AtomicU64,
    pub(crate) kernel_nanos: AtomicU64,
    pub(crate) incremental_hits: AtomicU64,
    pub(crate) branches_pruned_static: AtomicU64,
    pub(crate) absint_facts_seeded: AtomicU64,
}

impl AtomicSolverStats {
    pub(crate) fn snapshot(&self) -> SolverStats {
        SolverStats {
            unsat_queries: self.unsat_queries.load(Ordering::Relaxed),
            entailment_queries: self.entailment_queries.load(Ordering::Relaxed),
            cases_explored: self.cases_explored.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            smt_queries: self.smt_queries.load(Ordering::Relaxed),
            smt_unsat: self.smt_unsat.load(Ordering::Relaxed),
            smt_failures: self.smt_failures.load(Ordering::Relaxed),
            // Spawn-health lives in the shared SMT bridge, not the
            // per-context counters; `Solver::stats` merges it in.
            smt_reenabled: 0,
            kernel_nanos: self.kernel_nanos.load(Ordering::Relaxed),
            incremental_hits: self.incremental_hits.load(Ordering::Relaxed),
            // Disk-cache counters live at the driver/daemon layer, not in
            // the solver hub: a disk hit means no solver ever ran.
            disk_cache_hits: 0,
            disk_cache_misses: 0,
            disk_cache_writes: 0,
            branches_pruned_static: self.branches_pruned_static.load(Ordering::Relaxed),
            absint_facts_seeded: self.absint_facts_seeded.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.unsat_queries.store(0, Ordering::Relaxed);
        self.entailment_queries.store(0, Ordering::Relaxed);
        self.cases_explored.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.smt_queries.store(0, Ordering::Relaxed);
        self.smt_unsat.store(0, Ordering::Relaxed);
        self.smt_failures.store(0, Ordering::Relaxed);
        self.kernel_nanos.store(0, Ordering::Relaxed);
        self.incremental_hits.store(0, Ordering::Relaxed);
        self.branches_pruned_static.store(0, Ordering::Relaxed);
        self.absint_facts_seeded.store(0, Ordering::Relaxed);
    }
}

/// Which backend a [`crate::Solver`] hands out from [`crate::Solver::ctx`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// [`OneShotBackend`]: re-simplify everything on every query.
    OneShot,
    /// [`EagerBackend`]: incremental assertion processing, no cache, but the
    /// kernel still re-runs over the whole literal set per query.
    Incremental,
    /// [`IncrementalStateBackend`]: persistent congruence/linear state with
    /// an undo trail — queries consult the maintained closure and only
    /// re-split disjunctive literals.
    IncrementalState,
    /// [`CachingBackend`] over [`IncrementalStateBackend`]: the default.
    #[default]
    CachedIncremental,
    /// [`CachingBackend`] over [`crate::smtlib::SmtBackend`]: the in-repo
    /// kernel first, an external SMT-LIB2 process (z3/cvc5/`GILLIAN_SMT`)
    /// for whatever the kernel cannot refute. Degrades to the kernel alone
    /// when no solver binary is found.
    SmtLib,
}

impl BackendKind {
    /// Every in-repo backend, in ablation order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::OneShot,
        BackendKind::Incremental,
        BackendKind::IncrementalState,
        BackendKind::CachedIncremental,
    ];

    /// Every selectable backend, including the external SMT-LIB bridge
    /// (which degrades to the kernel when no solver binary is probed).
    pub const ALL_WITH_SMT: [BackendKind; 5] = [
        BackendKind::OneShot,
        BackendKind::Incremental,
        BackendKind::IncrementalState,
        BackendKind::CachedIncremental,
        BackendKind::SmtLib,
    ];

    /// A stable machine-readable label (reports, JSON, bench output).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::OneShot => "one-shot",
            BackendKind::Incremental => "incremental",
            BackendKind::IncrementalState => "incremental-state",
            BackendKind::CachedIncremental => "cached-incremental",
            BackendKind::SmtLib => "smtlib",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A branch-scoped solver backend: an assertion stack plus refutation and
/// entailment queries over it. Queries are *sound for refutation*: `true`
/// answers are definitive, `false` means "could not establish".
pub trait SolverBackend: Send {
    /// The backend's stable label.
    fn name(&self) -> &'static str;

    /// Opens a new assertion scope.
    fn push(&mut self);

    /// Closes the innermost scope, dropping the facts asserted inside it.
    /// Popping with no open scope is a no-op.
    fn pop(&mut self);

    /// Asserts a fact into the current scope.
    fn assert(&mut self, arena: &TermArena, fact: TermId);

    /// Is the conjunction of the asserted facts definitely unsatisfiable?
    fn check_unsat(&mut self, arena: &TermArena) -> bool;

    /// Do the asserted facts entail the goal?
    fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool;

    /// Was the most recent `check_unsat` answer *complete* — i.e. not cut
    /// short by the case budget? A complete verdict is a pure function of
    /// the asserted fact *set* (independent of assertion order), so only
    /// complete answers may be memoised under order-insensitive keys.
    fn last_query_complete(&self) -> bool {
        true
    }

    /// The raw asserted ids, in assertion order (diagnostics and tests).
    /// Returns a borrowed slice: this is called on hot clone/debug paths,
    /// where the previous `Vec` return cloned the whole stack per call.
    fn assertions(&self) -> &[TermId];

    /// Clones the backend for a branching symbolic execution: the clone gets
    /// an independent assertion stack but shares heavyweight structures
    /// (arena, cache, statistics) with the original.
    fn boxed_clone(&self) -> Box<dyn SolverBackend>;
}

/// Implements `entails` on top of `push`/`assert`/`pop`/`check_unsat` by
/// decomposing the goal: conjunctions split, implications assert their
/// hypothesis into a scope, disjunctions try each arm then refute the
/// negation, and any other goal is refuted by asserting its negation.
/// Recursive sub-queries go back through the backend's own entry points, so
/// a caching decorator also caches the sub-goals.
pub fn entails_by_decomposition<B: SolverBackend + ?Sized>(
    b: &mut B,
    arena: &TermArena,
    goal: TermId,
) -> bool {
    let goal = arena.resolve(arena.simplify(goal));
    match goal.as_ref() {
        Expr::Bool(true) => true,
        Expr::Bool(false) => b.check_unsat(arena),
        Expr::BinOp(BinOp::And, x, y) => {
            b.entails(arena, arena.intern(x)) && b.entails(arena, arena.intern(y))
        }
        Expr::BinOp(BinOp::Implies, x, y) => {
            b.push();
            b.assert(arena, arena.intern(x));
            let r = b.entails(arena, arena.intern(y));
            b.pop();
            r
        }
        Expr::BinOp(BinOp::Or, x, y) => {
            let (ix, iy) = (arena.intern(x), arena.intern(y));
            if b.entails(arena, ix) || b.entails(arena, iy) {
                return true;
            }
            b.push();
            b.assert(
                arena,
                arena.intern_owned(simplify(&Expr::not((**x).clone()))),
            );
            b.assert(
                arena,
                arena.intern_owned(simplify(&Expr::not((**y).clone()))),
            );
            let r = b.check_unsat(arena);
            b.pop();
            r
        }
        other => {
            b.push();
            b.assert(
                arena,
                arena.intern_owned(simplify(&Expr::not(other.clone()))),
            );
            let r = b.check_unsat(arena);
            b.pop();
            r
        }
    }
}

// ---------------------------------------------------------------------------
// One-shot baseline
// ---------------------------------------------------------------------------

/// The ablation baseline: stores raw asserted ids and, on **every** query,
/// re-resolves and re-simplifies the whole stack from scratch (no arena
/// memoisation, no cache) — the cost profile of the pre-redesign
/// `&[Expr]`-slice API.
#[derive(Debug)]
pub struct OneShotBackend {
    stats: Arc<AtomicSolverStats>,
    case_budget: usize,
    asserted: Vec<TermId>,
    scopes: Vec<usize>,
    last_complete: bool,
}

impl OneShotBackend {
    pub(crate) fn new(stats: Arc<AtomicSolverStats>, case_budget: usize) -> Self {
        OneShotBackend {
            stats,
            case_budget,
            asserted: Vec::new(),
            scopes: Vec::new(),
            last_complete: true,
        }
    }
}

impl SolverBackend for OneShotBackend {
    fn name(&self) -> &'static str {
        BackendKind::OneShot.label()
    }

    fn push(&mut self) {
        self.scopes.push(self.asserted.len());
    }

    fn pop(&mut self) {
        if let Some(mark) = self.scopes.pop() {
            self.asserted.truncate(mark);
        }
    }

    fn assert(&mut self, _arena: &TermArena, fact: TermId) {
        self.asserted.push(fact);
    }

    fn check_unsat(&mut self, arena: &TermArena) -> bool {
        let mut literals = Vec::new();
        let mut definitely_false = false;
        for &id in &self.asserted {
            // Deliberately the free-function simplifier: the baseline re-does
            // the full simplification walk per query.
            let s = simplify(&arena.resolve(id));
            kernel::flatten_conjuncts(&s, &mut literals, &mut definitely_false);
        }
        if definitely_false {
            self.last_complete = true;
            return true;
        }
        // Timed from here so `kernel_nanos` covers the same work in every
        // backend (kernel/theory time, not simplification).
        let start = Instant::now();
        let out = kernel::refute(&literals, self.case_budget);
        self.last_complete = !out.budget_exhausted;
        self.stats
            .cases_explored
            .fetch_add(out.leaf_cases, Ordering::Relaxed);
        self.stats
            .kernel_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out.refuted
    }

    fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool {
        entails_by_decomposition(self, arena, goal)
    }

    fn last_query_complete(&self) -> bool {
        self.last_complete
    }

    fn assertions(&self) -> &[TermId] {
        &self.asserted
    }

    fn boxed_clone(&self) -> Box<dyn SolverBackend> {
        Box::new(OneShotBackend {
            stats: Arc::clone(&self.stats),
            case_budget: self.case_budget,
            asserted: self.asserted.clone(),
            scopes: self.scopes.clone(),
            last_complete: self.last_complete,
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental (eager) backend
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct EagerScope {
    lits: usize,
    raw: usize,
    definitely_false: bool,
}

/// The incremental backend: each asserted fact is simplified through the
/// arena's memo table and flattened into literals exactly once; queries reuse
/// the flattened literal stack. A fact that simplifies to `false` poisons the
/// scope, short-circuiting every later query without touching the kernel.
/// (`Clone` because the SMT-LIB backend embeds one as its kernel half.)
#[derive(Clone, Debug)]
pub struct EagerBackend {
    stats: Arc<AtomicSolverStats>,
    case_budget: usize,
    /// Flattened, simplified literals (shared allocations from the arena).
    lits: Vec<Arc<Expr>>,
    /// Raw asserted ids, in assertion order.
    raw: Vec<TermId>,
    scopes: Vec<EagerScope>,
    definitely_false: bool,
    last_complete: bool,
}

impl EagerBackend {
    pub(crate) fn new(stats: Arc<AtomicSolverStats>, case_budget: usize) -> Self {
        EagerBackend {
            stats,
            case_budget,
            lits: Vec::new(),
            raw: Vec::new(),
            scopes: Vec::new(),
            definitely_false: false,
            last_complete: true,
        }
    }
}

impl SolverBackend for EagerBackend {
    fn name(&self) -> &'static str {
        BackendKind::Incremental.label()
    }

    fn push(&mut self) {
        self.scopes.push(EagerScope {
            lits: self.lits.len(),
            raw: self.raw.len(),
            definitely_false: self.definitely_false,
        });
    }

    fn pop(&mut self) {
        if let Some(mark) = self.scopes.pop() {
            self.lits.truncate(mark.lits);
            self.raw.truncate(mark.raw);
            self.definitely_false = mark.definitely_false;
        }
    }

    fn assert(&mut self, arena: &TermArena, fact: TermId) {
        self.raw.push(fact);
        let simplified = arena.resolve(arena.simplify(fact));
        kernel::flatten_shared(&simplified, &mut self.lits, &mut self.definitely_false);
    }

    fn check_unsat(&mut self, arena: &TermArena) -> bool {
        let _ = arena;
        if self.definitely_false {
            self.last_complete = true;
            return true;
        }
        let start = Instant::now();
        let out = kernel::refute(&self.lits, self.case_budget);
        self.last_complete = !out.budget_exhausted;
        self.stats
            .cases_explored
            .fetch_add(out.leaf_cases, Ordering::Relaxed);
        self.stats
            .kernel_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out.refuted
    }

    fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool {
        entails_by_decomposition(self, arena, goal)
    }

    fn last_query_complete(&self) -> bool {
        self.last_complete
    }

    fn assertions(&self) -> &[TermId] {
        &self.raw
    }

    fn boxed_clone(&self) -> Box<dyn SolverBackend> {
        Box::new(EagerBackend {
            stats: Arc::clone(&self.stats),
            case_budget: self.case_budget,
            lits: self.lits.clone(),
            raw: self.raw.clone(),
            scopes: self.scopes.clone(),
            definitely_false: self.definitely_false,
            last_complete: self.last_complete,
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental-state backend
// ---------------------------------------------------------------------------

/// The truly incremental backend: a persistent [`kernel::IncrementalState`]
/// (congruence closure + linear context with an undo trail) does each
/// literal's theory work **once, at assert time**; `check_unsat` consults
/// the maintained closure and re-runs only the case split over disjunctive
/// literals (each disjunct's decomposition memoised). `push`/`pop` restore
/// exact state in O(changes since the push), and branch clones snapshot the
/// whole trail-backed state instead of rebuilding it.
///
/// Soundness is inherited from the state's contract: every maintained fact
/// is a consequence of literals currently on the stack, so `refuted` still
/// means genuinely unsatisfiable. (`Clone` because the SMT-LIB backend
/// embeds one as its kernel half.)
#[derive(Clone, Debug)]
pub struct IncrementalStateBackend {
    stats: Arc<AtomicSolverStats>,
    case_budget: usize,
    state: kernel::IncrementalState,
    /// Raw asserted ids, in assertion order.
    raw: Vec<TermId>,
    scopes: Vec<usize>,
    last_complete: bool,
}

impl IncrementalStateBackend {
    pub(crate) fn new(stats: Arc<AtomicSolverStats>, case_budget: usize) -> Self {
        IncrementalStateBackend {
            stats,
            case_budget,
            state: kernel::IncrementalState::new(),
            raw: Vec::new(),
            scopes: Vec::new(),
            last_complete: true,
        }
    }
}

impl SolverBackend for IncrementalStateBackend {
    fn name(&self) -> &'static str {
        BackendKind::IncrementalState.label()
    }

    fn push(&mut self) {
        self.scopes.push(self.raw.len());
        self.state.push();
    }

    fn pop(&mut self) {
        if let Some(mark) = self.scopes.pop() {
            self.raw.truncate(mark);
            self.state.pop();
        }
    }

    fn assert(&mut self, arena: &TermArena, fact: TermId) {
        self.raw.push(fact);
        let simplified = arena.resolve(arena.simplify(fact));
        let mut lits = Vec::new();
        let mut definitely_false = false;
        kernel::flatten_shared(&simplified, &mut lits, &mut definitely_false);
        // The timer starts after simplify/flatten: every backend does that
        // work untimed, so `kernel_nanos` stays comparable across backends
        // (it measures theory/kernel work only).
        let start = Instant::now();
        if definitely_false {
            self.state.set_false();
        }
        for lit in &lits {
            self.state.assert_lit(lit);
        }
        self.stats
            .kernel_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn check_unsat(&mut self, arena: &TermArena) -> bool {
        let _ = arena;
        let start = Instant::now();
        let out = self.state.check(self.case_budget);
        self.last_complete = !out.budget_exhausted;
        if out.fast {
            self.stats.incremental_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.stats
            .cases_explored
            .fetch_add(out.leaf_cases, Ordering::Relaxed);
        self.stats
            .kernel_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out.refuted
    }

    fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool {
        entails_by_decomposition(self, arena, goal)
    }

    fn last_query_complete(&self) -> bool {
        self.last_complete
    }

    fn assertions(&self) -> &[TermId] {
        &self.raw
    }

    fn boxed_clone(&self) -> Box<dyn SolverBackend> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Caching decorator
// ---------------------------------------------------------------------------

/// A query that one context is currently computing. Concurrent askers of
/// the same (assertion set, goal) park here instead of re-running the
/// kernel, so each distinct query costs exactly one kernel exploration
/// whatever the thread count — this is what keeps the `cases_explored`
/// counter deterministic at 1 vs N workers (obligation- or branch-level).
///
/// Waits cannot deadlock: a computation only ever waits (through its
/// decomposition sub-queries) on entries whose key is a superset of its
/// own, or — at equal keys — whose goal is strictly structurally smaller
/// (`None` smallest), a well-founded descent shared by every thread.
#[derive(Debug)]
pub(crate) struct InFlight {
    state: Mutex<InFlightState>,
    cv: Condvar,
}

#[derive(Clone, Copy, Debug)]
enum InFlightState {
    Pending,
    Done(bool),
    /// The computation finished budget-exhausted (not cacheable): waiters
    /// must compute for themselves.
    Abandoned,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            state: Mutex::new(InFlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> InFlightState {
        let mut st = self.state.lock().unwrap();
        while matches!(*st, InFlightState::Pending) {
            st = self.cv.wait(st).unwrap();
        }
        *st
    }

    fn settle(&self, st: InFlightState) {
        *self.state.lock().unwrap() = st;
        self.cv.notify_all();
    }
}

/// A cached verdict: settled, or still being computed by some context.
#[derive(Clone, Debug)]
pub(crate) enum CachedVerdict {
    Done(bool),
    InFlight(Arc<InFlight>),
}

/// Cached verdicts for one canonical assertion set: `None` keys the plain
/// `check_unsat`, `Some(goal)` keys entailments of that (simplified) goal.
type GoalVerdicts = HashMap<Option<TermId>, CachedVerdict>;

/// The shared canonical query cache: one per [`crate::Solver`], shared by
/// every branch clone and worker thread. Two-level so lookups can borrow the
/// canonical slice instead of allocating a key per query.
pub(crate) type QueryCache = Arc<RwLock<HashMap<Box<[TermId]>, GoalVerdicts>>>;

/// What [`CachingBackend::lookup_or_begin`] decided.
enum Lookup {
    /// A settled verdict (either cached, or computed by another context we
    /// waited for).
    Hit(bool),
    /// This context claimed the query: it must compute and then
    /// [`ClaimGuard::finish`] the claim.
    Compute(ClaimGuard),
}

/// RAII claim on an in-flight query. Created when a context installs the
/// in-flight marker, and guaranteed to release it exactly once: either
/// explicitly through [`ClaimGuard::finish`] (publishing the verdict), or on
/// drop — a panic during the computation, a backend that bails out early,
/// any future code path that forgets — by removing the entry and waking
/// every parked waiter with `Abandoned`. Structurally, no worker can be
/// left parked forever on a computation that will never settle; this is
/// load-bearing for external-process backends, whose solves can die or be
/// killed mid-query.
pub(crate) struct ClaimGuard {
    cache: QueryCache,
    cell: Arc<InFlight>,
    key: Box<[TermId]>,
    goal: Option<TermId>,
    finished: bool,
}

impl ClaimGuard {
    /// Publishes the result of the claimed query: settles the entry when the
    /// answer is complete (cacheable), removes it otherwise, and wakes every
    /// parked waiter either way. The key is the canonical-set snapshot taken
    /// at claim time (entailment decompositions push and pop around the
    /// computation; the stack is balanced, but the snapshot makes this
    /// independent of that invariant).
    fn finish(mut self, result: bool, complete: bool) {
        {
            let key = std::mem::take(&mut self.key);
            let mut write = self.cache.write().unwrap();
            let slot = write.entry(key).or_default();
            if complete {
                slot.insert(self.goal, CachedVerdict::Done(result));
            } else {
                slot.remove(&self.goal);
            }
        }
        self.cell.settle(if complete {
            InFlightState::Done(result)
        } else {
            InFlightState::Abandoned
        });
        self.finished = true;
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        if let Ok(mut write) = self.cache.write() {
            if let Some(m) = write.get_mut(&self.key) {
                m.remove(&self.goal);
            }
        }
        self.cell.settle(InFlightState::Abandoned);
    }
}

/// A decorator adding an order-insensitive query cache in front of any
/// backend. Keys canonicalise the assertion set (sorted, deduplicated), so
/// the same facts asserted in a different order — a different execution path
/// reaching the same pure state — hit the same entry.
///
/// Only *complete* answers are cached ([`SolverBackend::last_query_complete`]):
/// a budget-exhausted "could not refute" is the one kernel answer that can
/// depend on assertion order, so keeping it out of the cache makes cached
/// verdicts a pure function of the fact set — preserving both refutation
/// soundness and cross-worker determinism.
pub struct CachingBackend {
    inner: Box<dyn SolverBackend>,
    cache: QueryCache,
    stats: Arc<AtomicSolverStats>,
    /// Simplified ids of the asserted facts, in assertion order.
    key_ids: Vec<TermId>,
    scopes: Vec<usize>,
    /// Memoised canonical form of `key_ids`; invalidated on assert/pop.
    canonical: Option<Box<[TermId]>>,
    /// Bumped whenever an inner query comes back budget-exhausted; lets
    /// `entails` tell whether its whole decomposition was complete.
    incomplete_events: u64,
    name: &'static str,
}

impl std::fmt::Debug for CachingBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CachingBackend({})", self.inner.name())
    }
}

impl CachingBackend {
    pub(crate) fn new(
        inner: Box<dyn SolverBackend>,
        cache: QueryCache,
        stats: Arc<AtomicSolverStats>,
        name: &'static str,
    ) -> Self {
        CachingBackend {
            inner,
            cache,
            stats,
            key_ids: Vec::new(),
            scopes: Vec::new(),
            canonical: None,
            incomplete_events: 0,
            name,
        }
    }

    /// The canonical (sorted, deduplicated) assertion set, recomputed only
    /// after the stack changed — queries between mutations reuse it.
    fn canonical(&mut self) -> &[TermId] {
        if self.canonical.is_none() {
            let mut ids = self.key_ids.clone();
            ids.sort_unstable();
            ids.dedup();
            self.canonical = Some(ids.into_boxed_slice());
        }
        self.canonical.as_deref().unwrap()
    }

    /// Resolves a query against the cache, *claiming* it when absent.
    ///
    /// * A settled entry is a hit.
    /// * An in-flight entry (another context is computing the same query
    ///   right now) parks until it settles — the query is never computed
    ///   twice, which keeps kernel-work counters deterministic whatever the
    ///   thread count.
    /// * An absent entry is claimed: an in-flight marker is installed and
    ///   the caller must compute and [`CachingBackend::finish`].
    fn lookup_or_begin(&mut self, goal: Option<TermId>) -> Lookup {
        use std::collections::hash_map::Entry;
        let cache = Arc::clone(&self.cache);
        // Fast path: a settled entry under the read lock, with no key
        // allocation (the overwhelmingly common case on warm caches).
        let fast = {
            let key = self.canonical();
            match cache.read().unwrap().get(key).and_then(|m| m.get(&goal)) {
                Some(CachedVerdict::Done(b)) => Some(*b),
                _ => None,
            }
        };
        if let Some(b) = fast {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Hit(b);
        }
        loop {
            enum Probe {
                Hit(bool),
                Wait(Arc<InFlight>),
                Claimed(ClaimGuard),
            }
            let probe = {
                let key: Box<[TermId]> = Box::from(self.canonical());
                let mut write = cache.write().unwrap();
                match write.entry(key.clone()).or_default().entry(goal) {
                    Entry::Occupied(e) => match e.get() {
                        CachedVerdict::Done(b) => Probe::Hit(*b),
                        CachedVerdict::InFlight(cell) => Probe::Wait(Arc::clone(cell)),
                    },
                    Entry::Vacant(slot) => {
                        let cell = Arc::new(InFlight::new());
                        slot.insert(CachedVerdict::InFlight(Arc::clone(&cell)));
                        Probe::Claimed(ClaimGuard {
                            cache: Arc::clone(&cache),
                            cell,
                            key,
                            goal,
                            finished: false,
                        })
                    }
                }
            };
            match probe {
                Probe::Hit(b) => {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(b);
                }
                Probe::Claimed(claim) => return Lookup::Compute(claim),
                Probe::Wait(cell) => match cell.wait() {
                    InFlightState::Done(b) => {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        return Lookup::Hit(b);
                    }
                    // The computation was not cacheable (budget-exhausted):
                    // retry, most likely claiming the query for ourselves.
                    InFlightState::Abandoned => continue,
                    InFlightState::Pending => unreachable!("wait() returns settled states"),
                },
            }
        }
    }
}

impl SolverBackend for CachingBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn push(&mut self) {
        self.scopes.push(self.key_ids.len());
        self.inner.push();
    }

    fn pop(&mut self) {
        if let Some(mark) = self.scopes.pop() {
            if mark != self.key_ids.len() {
                self.key_ids.truncate(mark);
                self.canonical = None;
            }
        }
        self.inner.pop();
    }

    fn assert(&mut self, arena: &TermArena, fact: TermId) {
        self.key_ids.push(arena.simplify(fact));
        self.canonical = None;
        self.inner.assert(arena, fact);
    }

    fn check_unsat(&mut self, arena: &TermArena) -> bool {
        match self.lookup_or_begin(None) {
            Lookup::Hit(b) => b,
            Lookup::Compute(claim) => {
                // The claim settles (as abandoned) if the inner backend
                // panics or otherwise exits without reaching `finish`.
                let result = self.inner.check_unsat(arena);
                let complete = self.inner.last_query_complete();
                if !complete {
                    self.incomplete_events += 1;
                }
                claim.finish(result, complete);
                result
            }
        }
    }

    fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool {
        let goal_id = arena.simplify(goal);
        match self.lookup_or_begin(Some(goal_id)) {
            Lookup::Hit(b) => b,
            Lookup::Compute(claim) => {
                // Decompose through *this* backend, so sub-goals and the
                // leaf refutations are cached too. The decomposition
                // restores the assertion stack (balanced push/pop), so the
                // claimed key is unchanged by the time we publish.
                let before = self.incomplete_events;
                let result = entails_by_decomposition(self, arena, goal_id);
                let complete = self.incomplete_events == before;
                claim.finish(result, complete);
                result
            }
        }
    }

    fn last_query_complete(&self) -> bool {
        self.inner.last_query_complete()
    }

    fn assertions(&self) -> &[TermId] {
        self.inner.assertions()
    }

    fn boxed_clone(&self) -> Box<dyn SolverBackend> {
        Box::new(CachingBackend {
            inner: self.inner.boxed_clone(),
            cache: Arc::clone(&self.cache),
            stats: Arc::clone(&self.stats),
            key_ids: self.key_ids.clone(),
            scopes: self.scopes.clone(),
            canonical: self.canonical.clone(),
            incomplete_events: self.incomplete_events,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod inflight_tests {
    use super::*;
    use crate::expr::VarGen;
    use std::sync::mpsc;
    use std::time::Duration;

    /// An inner backend that signals when its computation starts, then
    /// panics — standing in for a computing thread (or an external solver
    /// process) that dies without ever settling its in-flight entry.
    struct PanickingBackend {
        asserted: Vec<TermId>,
        started: mpsc::Sender<()>,
    }

    impl SolverBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn push(&mut self) {}
        fn pop(&mut self) {}
        fn assert(&mut self, _arena: &TermArena, fact: TermId) {
            self.asserted.push(fact);
        }
        fn check_unsat(&mut self, _arena: &TermArena) -> bool {
            let _ = self.started.send(());
            // Give the sibling context time to park on the in-flight entry.
            std::thread::sleep(Duration::from_millis(100));
            panic!("backend died mid-query");
        }
        fn entails(&mut self, arena: &TermArena, goal: TermId) -> bool {
            entails_by_decomposition(self, arena, goal)
        }
        fn assertions(&self) -> &[TermId] {
            &self.asserted
        }
        fn boxed_clone(&self) -> Box<dyn SolverBackend> {
            unreachable!("not cloned in this test")
        }
    }

    /// Regression: a claimed in-flight computation that dies without
    /// settling must release parked waiters (the [`ClaimGuard`] settles the
    /// entry as abandoned on drop). Without the guard, the waiter parks on
    /// the condvar forever and a parallel exploration deadlocks.
    #[test]
    fn dead_computation_releases_parked_waiters() {
        let arena = Arc::new(TermArena::new());
        let stats = Arc::new(AtomicSolverStats::default());
        let cache: QueryCache = Arc::new(RwLock::new(HashMap::new()));
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let facts = [Expr::eq(x.clone(), Expr::Int(1)), Expr::eq(x, Expr::Int(2))];

        let (started_tx, started_rx) = mpsc::channel();
        let dying = {
            let arena = Arc::clone(&arena);
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            let facts = facts.clone();
            std::thread::spawn(move || {
                let mut b = CachingBackend::new(
                    Box::new(PanickingBackend {
                        asserted: Vec::new(),
                        started: started_tx,
                    }),
                    cache,
                    stats,
                    "caching-panicking",
                );
                for f in &facts {
                    let id = arena.intern(f);
                    b.assert(&arena, id);
                }
                // Claims the (facts, None) entry, then dies inside the inner
                // backend; the unwind drops the claim guard.
                b.check_unsat(&arena)
            })
        };
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the dying context claims the query");

        // A sibling context asking the same canonical query: parks on the
        // in-flight entry, must be released when the computation dies, and
        // then computes the verdict for itself.
        let (done_tx, done_rx) = mpsc::channel();
        let waiter = {
            let arena = Arc::clone(&arena);
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                let mut b = CachingBackend::new(
                    Box::new(EagerBackend::new(Arc::clone(&stats), 512)),
                    cache,
                    stats,
                    "caching-eager",
                );
                for f in &facts {
                    let id = arena.intern(f);
                    b.assert(&arena, id);
                }
                let _ = done_tx.send(b.check_unsat(&arena));
            })
        };

        assert!(dying.join().is_err(), "the computing thread panicked");
        let verdict = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the parked waiter must be released, not deadlock");
        assert!(verdict, "x == 1 && x == 2 is unsatisfiable");
        waiter.join().unwrap();
    }
}
