//! Syntactic normalisation of expressions.
//!
//! `simplify` applies local, meaning-preserving rewrites bottom-up until a
//! fixpoint (with a small iteration bound). It performs constant folding,
//! constructor-equality decomposition, sequence normalisation and basic
//! boolean/arithmetic identities. Heavier reasoning (congruence closure,
//! linear arithmetic, multisets) lives in the dedicated solver modules.

use crate::expr::{BinOp, Expr, NOp, UnOp};

/// Simplifies an expression to a normal form.
pub fn simplify(e: &Expr) -> Expr {
    let mut current = e.clone();
    for _ in 0..4 {
        let next = current.map(&rewrite);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

/// Is this expression a "value-like" term for which syntactic disequality of
/// head constructors implies semantic disequality?
fn is_constructor_like(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Loc(_)
            | Expr::Unit
            | Expr::Ctor(..)
            | Expr::SeqLit(_)
            | Expr::Tuple(_)
    )
}

fn rewrite(e: Expr) -> Expr {
    match e {
        Expr::UnOp(op, a) => rewrite_unop(op, *a),
        Expr::BinOp(op, a, b) => rewrite_binop(op, *a, *b),
        Expr::NOp(op, args) => rewrite_nop(op, args),
        Expr::Ite(c, t, els) => match c.as_bool() {
            Some(true) => *t,
            Some(false) => *els,
            None => {
                if t == els {
                    *t
                } else {
                    Expr::Ite(c, t, els)
                }
            }
        },
        other => other,
    }
}

fn rewrite_unop(op: UnOp, a: Expr) -> Expr {
    match (op, &a) {
        (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
        (UnOp::Not, Expr::UnOp(UnOp::Not, inner)) => (**inner).clone(),
        (UnOp::Not, Expr::BinOp(BinOp::Eq, x, y)) => Expr::BinOp(BinOp::Ne, x.clone(), y.clone()),
        (UnOp::Not, Expr::BinOp(BinOp::Ne, x, y)) => Expr::BinOp(BinOp::Eq, x.clone(), y.clone()),
        (UnOp::Not, Expr::BinOp(BinOp::Lt, x, y)) => Expr::BinOp(BinOp::Le, y.clone(), x.clone()),
        (UnOp::Not, Expr::BinOp(BinOp::Le, x, y)) => Expr::BinOp(BinOp::Lt, y.clone(), x.clone()),
        // De Morgan: push negations through conjunction/disjunction/implication
        // so that the solver's case splitting sees the disjunctive structure.
        (UnOp::Not, Expr::BinOp(BinOp::And, x, y)) => {
            Expr::or(Expr::not((**x).clone()), Expr::not((**y).clone()))
        }
        (UnOp::Not, Expr::BinOp(BinOp::Or, x, y)) => {
            Expr::and(Expr::not((**x).clone()), Expr::not((**y).clone()))
        }
        (UnOp::Not, Expr::BinOp(BinOp::Implies, x, y)) => {
            Expr::and((**x).clone(), Expr::not((**y).clone()))
        }
        (UnOp::Neg, Expr::Int(i)) => Expr::Int(-i),
        (UnOp::Neg, Expr::UnOp(UnOp::Neg, inner)) => (**inner).clone(),
        (UnOp::SeqLen, Expr::SeqLit(items)) => Expr::Int(items.len() as i128),
        (UnOp::SeqLen, Expr::BinOp(BinOp::SeqConcat, x, y)) => {
            Expr::add(Expr::seq_len((**x).clone()), Expr::seq_len((**y).clone()))
        }
        (UnOp::SeqLen, Expr::BinOp(BinOp::SeqRepeat, _, n)) => (**n).clone(),
        (UnOp::SeqLen, Expr::NOp(NOp::SeqUpdate, args)) => Expr::seq_len(args[0].clone()),
        (UnOp::SeqLen, Expr::NOp(NOp::SeqSub, args)) => {
            // len(s[a..b]) == b - a, under the well-formedness convention that
            // 0 <= a <= b <= len(s) (enforced by all producers of SeqSub).
            Expr::sub(args[2].clone(), args[1].clone())
        }
        (UnOp::BagOf, Expr::BinOp(BinOp::SeqConcat, x, y)) => Expr::bin(
            BinOp::BagUnion,
            Expr::bag_of((**x).clone()),
            Expr::bag_of((**y).clone()),
        ),
        _ => Expr::UnOp(op, Box::new(a)),
    }
}

fn rewrite_binop(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    match op {
        Add => match (&a, &b) {
            (Expr::Int(x), Expr::Int(y)) => Expr::Int(x + y),
            (Expr::Int(0), _) => b,
            (_, Expr::Int(0)) => a,
            // (x + a) + b  ==>  x + (a + b) for literal a, b.
            (Expr::BinOp(Add, x, k1), Expr::Int(k2)) => match k1.as_int() {
                Some(k1v) => Expr::add((**x).clone(), Expr::Int(k1v + k2)),
                None => Expr::bin(Add, a, b),
            },
            _ => Expr::bin(Add, a, b),
        },
        Sub => match (&a, &b) {
            (Expr::Int(x), Expr::Int(y)) => Expr::Int(x - y),
            (_, Expr::Int(0)) => a,
            _ if a == b => Expr::Int(0),
            _ => Expr::bin(Sub, a, b),
        },
        Mul => match (&a, &b) {
            (Expr::Int(x), Expr::Int(y)) => Expr::Int(x * y),
            (Expr::Int(0), _) | (_, Expr::Int(0)) => Expr::Int(0),
            (Expr::Int(1), _) => b,
            (_, Expr::Int(1)) => a,
            _ => Expr::bin(Mul, a, b),
        },
        Div => match (&a, &b) {
            (Expr::Int(x), Expr::Int(y)) if *y != 0 => Expr::Int(x / y),
            (_, Expr::Int(1)) => a,
            _ => Expr::bin(Div, a, b),
        },
        Rem => match (&a, &b) {
            (Expr::Int(x), Expr::Int(y)) if *y != 0 => Expr::Int(x % y),
            // Parity reasoning: (x + k) % 2 == x % 2 when k is even.
            (Expr::BinOp(Add, x, k), Expr::Int(2))
                if k.as_int().map(|v| v % 2 == 0) == Some(true) =>
            {
                Expr::bin(Rem, (**x).clone(), Expr::Int(2))
            }
            _ => Expr::bin(Rem, a, b),
        },
        Lt | Le | Gt | Ge => rewrite_cmp(op, a, b),
        Eq => rewrite_eq(a, b),
        Ne => match rewrite_eq(a, b) {
            Expr::Bool(v) => Expr::Bool(!v),
            Expr::BinOp(Eq, x, y) => Expr::BinOp(Ne, x, y),
            other => Expr::not(other),
        },
        And => match (&a, &b) {
            (Expr::Bool(true), _) => b,
            (_, Expr::Bool(true)) => a,
            (Expr::Bool(false), _) | (_, Expr::Bool(false)) => Expr::Bool(false),
            _ => Expr::bin(And, a, b),
        },
        Or => match (&a, &b) {
            (Expr::Bool(false), _) => b,
            (_, Expr::Bool(false)) => a,
            (Expr::Bool(true), _) | (_, Expr::Bool(true)) => Expr::Bool(true),
            _ => Expr::bin(Or, a, b),
        },
        Implies => match (&a, &b) {
            (Expr::Bool(true), _) => b,
            (Expr::Bool(false), _) => Expr::Bool(true),
            (_, Expr::Bool(true)) => Expr::Bool(true),
            (_, Expr::Bool(false)) => Expr::not(a),
            _ => Expr::bin(Implies, a, b),
        },
        SeqAt => match (&a, &b) {
            (Expr::SeqLit(items), Expr::Int(i)) if *i >= 0 && (*i as usize) < items.len() => {
                items[*i as usize].clone()
            }
            (Expr::BinOp(SeqConcat, x, y), Expr::Int(i)) => {
                if let Expr::SeqLit(items) = x.as_ref() {
                    let n = items.len() as i128;
                    if *i >= 0 && *i < n {
                        items[*i as usize].clone()
                    } else if *i >= n {
                        Expr::seq_at((**y).clone(), Expr::Int(i - n))
                    } else {
                        Expr::bin(SeqAt, a, b)
                    }
                } else {
                    Expr::bin(SeqAt, a, b)
                }
            }
            _ => Expr::bin(SeqAt, a, b),
        },
        SeqConcat => match (&a, &b) {
            (Expr::SeqLit(x), _) if x.is_empty() => b,
            (_, Expr::SeqLit(y)) if y.is_empty() => a,
            (Expr::SeqLit(x), Expr::SeqLit(y)) => {
                let mut items = x.clone();
                items.extend(y.clone());
                Expr::SeqLit(items)
            }
            // Re-associate to the right so that concatenations have a
            // canonical spine: (a ++ b) ++ c  ==>  a ++ (b ++ c).
            (Expr::BinOp(SeqConcat, x, y), _) => {
                Expr::seq_concat((**x).clone(), Expr::seq_concat((**y).clone(), b))
            }
            _ => Expr::bin(SeqConcat, a, b),
        },
        SeqRepeat => match (&a, &b) {
            (_, Expr::Int(n)) if *n >= 0 && *n <= 64 => {
                Expr::SeqLit(std::iter::repeat_n(a.clone(), *n as usize).collect())
            }
            _ => Expr::bin(SeqRepeat, a, b),
        },
        BagUnion => Expr::bin(BagUnion, a, b),
    }
}

fn rewrite_cmp(op: BinOp, a: Expr, b: Expr) -> Expr {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        let v = match op {
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!(),
        };
        return Expr::Bool(v);
    }
    // Canonicalise Gt/Ge into Lt/Le.
    match op {
        BinOp::Gt => Expr::bin(BinOp::Lt, b, a),
        BinOp::Ge => Expr::bin(BinOp::Le, b, a),
        _ => Expr::bin(op, a, b),
    }
}

fn rewrite_eq(a: Expr, b: Expr) -> Expr {
    if a == b {
        return Expr::Bool(true);
    }
    // Parity: (x ± odd) % 2 == 0  ⟺  x % 2 != 0 (holds for Rust's `%` on
    // negative operands as well).
    for (lhs, rhs) in [(&a, &b), (&b, &a)] {
        if rhs.as_int() == Some(0) {
            if let Expr::BinOp(BinOp::Rem, inner, two) = lhs {
                if two.as_int() == Some(2) {
                    if let Expr::BinOp(BinOp::Add | BinOp::Sub, x, k) = inner.as_ref() {
                        if k.as_int().map(|v| v.rem_euclid(2) == 1) == Some(true) {
                            return Expr::ne(
                                Expr::bin(BinOp::Rem, (**x).clone(), Expr::Int(2)),
                                Expr::Int(0),
                            );
                        }
                    }
                }
            }
        }
    }
    match (&a, &b) {
        (Expr::Int(x), Expr::Int(y)) => Expr::Bool(x == y),
        (Expr::Bool(x), Expr::Bool(y)) => Expr::Bool(x == y),
        (Expr::Loc(x), Expr::Loc(y)) => Expr::Bool(x == y),
        (Expr::Ctor(t1, args1), Expr::Ctor(t2, args2)) => {
            if t1 != t2 || args1.len() != args2.len() {
                Expr::Bool(false)
            } else {
                Expr::conj(
                    args1
                        .iter()
                        .zip(args2.iter())
                        .map(|(x, y)| Expr::eq(x.clone(), y.clone())),
                )
            }
        }
        (Expr::Tuple(args1), Expr::Tuple(args2)) | (Expr::SeqLit(args1), Expr::SeqLit(args2))
            if args1.len() == args2.len() =>
        {
            Expr::conj(
                args1
                    .iter()
                    .zip(args2.iter())
                    .map(|(x, y)| Expr::eq(x.clone(), y.clone())),
            )
        }
        (Expr::SeqLit(args1), Expr::SeqLit(args2)) if args1.len() != args2.len() => {
            Expr::Bool(false)
        }
        // A literal can never equal a term with a different constructor head.
        _ if is_constructor_like(&a)
            && is_constructor_like(&b)
            && std::mem::discriminant(&a) != std::mem::discriminant(&b)
            && !matches!(
                (&a, &b),
                (Expr::SeqLit(_), _)
                    | (_, Expr::SeqLit(_))
                    | (Expr::Tuple(_), _)
                    | (_, Expr::Tuple(_))
            ) =>
        {
            Expr::Bool(false)
        }
        // A boolean literal equated with a boolean expression simplifies away.
        (Expr::Bool(true), _) => b,
        (_, Expr::Bool(true)) => a,
        (Expr::Bool(false), _) => Expr::not(b),
        (_, Expr::Bool(false)) => Expr::not(a),
        _ => Expr::bin(BinOp::Eq, a, b),
    }
}

fn rewrite_nop(op: NOp, args: Vec<Expr>) -> Expr {
    match op {
        NOp::SeqSub => {
            let (s, from, to) = (&args[0], &args[1], &args[2]);
            match (s, from.as_int(), to.as_int()) {
                (Expr::SeqLit(items), Some(f), Some(t))
                    if f >= 0 && t >= f && (t as usize) <= items.len() =>
                {
                    Expr::SeqLit(items[f as usize..t as usize].to_vec())
                }
                _ => {
                    if from == to {
                        return Expr::empty_seq();
                    }
                    // s[i..i+1] is the singleton [s[i]].
                    if *to == Expr::add(from.clone(), Expr::Int(1))
                        || (from.as_int().is_some()
                            && to.as_int() == Some(from.as_int().unwrap() + 1))
                    {
                        return Expr::SeqLit(vec![Expr::seq_at(s.clone(), from.clone())]);
                    }
                    if from.as_int() == Some(0) {
                        if let Expr::UnOp(UnOp::SeqLen, inner) = to {
                            if inner.as_ref() == s {
                                return s.clone();
                            }
                        }
                    }
                    Expr::NOp(NOp::SeqSub, args)
                }
            }
        }
        NOp::SeqUpdate => {
            let (s, i, v) = (&args[0], &args[1], &args[2]);
            match (s, i.as_int()) {
                (Expr::SeqLit(items), Some(idx)) if idx >= 0 && (idx as usize) < items.len() => {
                    let mut items = items.clone();
                    items[idx as usize] = v.clone();
                    Expr::SeqLit(items)
                }
                _ => Expr::NOp(NOp::SeqUpdate, args),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    fn s(e: &Expr) -> Expr {
        simplify(e)
    }

    #[test]
    fn constant_folding_arithmetic() {
        let e = Expr::add(Expr::Int(2), Expr::mul(Expr::Int(3), Expr::Int(4)));
        assert_eq!(s(&e), Expr::Int(14));
    }

    #[test]
    fn add_zero_identity() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        assert_eq!(s(&Expr::add(x.clone(), Expr::Int(0))), x);
    }

    #[test]
    fn sub_self_is_zero() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        assert_eq!(s(&Expr::sub(x.clone(), x)), Expr::Int(0));
    }

    #[test]
    fn ctor_equality_decomposes() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let e = Expr::eq(Expr::some(x.clone()), Expr::some(Expr::Int(3)));
        assert_eq!(s(&e), Expr::eq(x, Expr::Int(3)));
    }

    #[test]
    fn distinct_ctors_are_unequal() {
        let e = Expr::eq(Expr::none(), Expr::some(Expr::Int(3)));
        assert_eq!(s(&e), Expr::Bool(false));
    }

    #[test]
    fn none_equals_none() {
        assert_eq!(s(&Expr::eq(Expr::none(), Expr::none())), Expr::Bool(true));
    }

    #[test]
    fn seq_len_of_literal() {
        let e = Expr::seq_len(Expr::seq(vec![Expr::Int(1), Expr::Int(2)]));
        assert_eq!(s(&e), Expr::Int(2));
    }

    #[test]
    fn seq_len_distributes_over_concat() {
        let mut g = VarGen::new();
        let xs = g.fresh_expr();
        let e = Expr::seq_len(Expr::seq_concat(Expr::seq(vec![Expr::Int(1)]), xs.clone()));
        assert_eq!(s(&e), Expr::add(Expr::Int(1), Expr::seq_len(xs)));
    }

    #[test]
    fn concat_literals_merges() {
        let e = Expr::seq_concat(
            Expr::seq(vec![Expr::Int(1)]),
            Expr::seq(vec![Expr::Int(2), Expr::Int(3)]),
        );
        assert_eq!(
            s(&e),
            Expr::seq(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)])
        );
    }

    #[test]
    fn concat_reassociates_right() {
        let mut g = VarGen::new();
        let a = g.fresh_expr();
        let b = g.fresh_expr();
        let c = g.fresh_expr();
        let e = Expr::seq_concat(Expr::seq_concat(a.clone(), b.clone()), c.clone());
        assert_eq!(s(&e), Expr::seq_concat(a, Expr::seq_concat(b, c)));
    }

    #[test]
    fn seq_at_literal_index() {
        let e = Expr::seq_at(Expr::seq(vec![Expr::Int(10), Expr::Int(20)]), Expr::Int(1));
        assert_eq!(s(&e), Expr::Int(20));
    }

    #[test]
    fn seq_at_skips_literal_prefix() {
        let mut g = VarGen::new();
        let rest = g.fresh_expr();
        let e = Expr::seq_at(
            Expr::seq_concat(Expr::seq(vec![Expr::Int(10)]), rest.clone()),
            Expr::Int(2),
        );
        assert_eq!(s(&e), Expr::seq_at(rest, Expr::Int(1)));
    }

    #[test]
    fn not_not_cancels() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let e = Expr::not(Expr::not(Expr::eq(x.clone(), Expr::Int(1))));
        assert_eq!(s(&e), Expr::eq(x, Expr::Int(1)));
    }

    #[test]
    fn not_lt_becomes_le() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let e = Expr::not(Expr::lt(x.clone(), Expr::Int(3)));
        assert_eq!(s(&e), Expr::le(Expr::Int(3), x));
    }

    #[test]
    fn ite_constant_condition() {
        let e = Expr::ite(Expr::Bool(true), Expr::Int(1), Expr::Int(2));
        assert_eq!(s(&e), Expr::Int(1));
    }

    #[test]
    fn implies_with_false_hypothesis() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let e = Expr::implies(Expr::Bool(false), Expr::eq(x, Expr::Int(1)));
        assert_eq!(s(&e), Expr::Bool(true));
    }

    #[test]
    fn gt_canonicalises_to_lt() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let e = Expr::gt(x.clone(), Expr::Int(3));
        assert_eq!(s(&e), Expr::lt(Expr::Int(3), x));
    }

    #[test]
    fn seq_sub_of_literal() {
        let e = Expr::seq_sub(
            Expr::seq(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)]),
            Expr::Int(1),
            Expr::Int(3),
        );
        assert_eq!(s(&e), Expr::seq(vec![Expr::Int(2), Expr::Int(3)]));
    }

    #[test]
    fn seq_sub_whole_range_is_identity() {
        let mut g = VarGen::new();
        let xs = g.fresh_expr();
        let e = Expr::seq_sub(xs.clone(), Expr::Int(0), Expr::seq_len(xs.clone()));
        assert_eq!(s(&e), xs);
    }

    #[test]
    fn seq_update_literal() {
        let e = Expr::seq_update(
            Expr::seq(vec![Expr::Int(1), Expr::Int(2)]),
            Expr::Int(0),
            Expr::Int(9),
        );
        assert_eq!(s(&e), Expr::seq(vec![Expr::Int(9), Expr::Int(2)]));
    }

    #[test]
    fn bag_of_concat_splits() {
        let mut g = VarGen::new();
        let a = g.fresh_expr();
        let b = g.fresh_expr();
        let e = Expr::bag_of(Expr::seq_concat(a.clone(), b.clone()));
        assert_eq!(
            s(&e),
            Expr::bin(BinOp::BagUnion, Expr::bag_of(a), Expr::bag_of(b))
        );
    }

    #[test]
    fn eq_bool_literal_simplifies() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let cond = Expr::lt(x.clone(), Expr::Int(3));
        assert_eq!(s(&Expr::eq(cond.clone(), Expr::Bool(true))), cond);
    }

    #[test]
    fn repeat_small_literal_unrolls() {
        let e = Expr::seq_repeat(Expr::Int(7), Expr::Int(3));
        assert_eq!(
            s(&e),
            Expr::seq(vec![Expr::Int(7), Expr::Int(7), Expr::Int(7)])
        );
    }
}
