//! Congruence closure over uninterpreted terms.
//!
//! Every expression is interned into a term graph; equalities asserted by the
//! path condition are propagated by congruence (if `f(a) ~ f(b)` whenever
//! `a ~ b`). Constructor semantics are layered on top: two terms in the same
//! class whose head constructors are distinct literals or distinct datatype
//! tags witness a contradiction, and equated constructor applications with the
//! same tag propagate equalities between their fields (injectivity).
//!
//! Interpreted operators are handled by *normalisation*: when a child of an
//! interpreted term (`++`, arithmetic, `len`, …) sits in a class that
//! contains a concrete form (a literal, constructor, sequence or tuple), the
//! term is re-simplified with that form substituted and merged with the
//! result — so `c ~ []` makes `[e] ++ c ~ [e]`, which pure congruence over
//! uninterpreted heads cannot see.

use crate::expr::{BinOp, Expr, NOp, SVar, UnOp};
use crate::simplify::simplify;
use crate::symbol::Symbol;
use std::collections::HashMap;

/// Identifier of an interned term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// The head of an interned term (its children are stored separately).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermHead {
    Var(SVar),
    LVar(Symbol),
    PVar(Symbol),
    Int(i128),
    Bool(bool),
    Loc(u64),
    Unit,
    Ctor(Symbol),
    Tuple,
    SeqLit,
    UnOp(UnOp),
    BinOp(BinOp),
    NOp(NOp),
    Ite,
    App(Symbol),
}

impl TermHead {
    /// Is this head a "constructor" in the sense that two different heads can
    /// never denote the same value?
    fn is_value_head(&self) -> bool {
        matches!(
            self,
            TermHead::Int(_)
                | TermHead::Bool(_)
                | TermHead::Loc(_)
                | TermHead::Unit
                | TermHead::Ctor(_)
        )
    }
}

#[derive(Clone, Debug)]
struct Term {
    head: TermHead,
    children: Vec<TermId>,
}

/// A congruence-closure engine with an **undo trail**: every union-find
/// write (merges *and* path compressions) is logged, so [`Congruence::undo_to`]
/// restores the exact state of an earlier [`Congruence::snapshot`] in
/// O(changes) — the backbone of the incremental solver backend, where branch
/// scopes push and pop around transient hypotheses thousands of times per
/// proof.
#[derive(Clone, Debug, Default)]
pub struct Congruence {
    terms: Vec<Term>,
    intern: HashMap<(TermHead, Vec<TermId>), TermId>,
    parent: Vec<u32>,
    /// Set to `true` when a contradiction has been found.
    contradiction: bool,
    /// Pending equalities discovered by injectivity, to be merged.
    pending: Vec<(TermId, TermId)>,
    /// Undo log of parent-pointer writes `(index, previous value)`, in write
    /// order. Includes path-compression writes, so rewinding the trail
    /// restores the union-find byte-for-byte.
    trail: Vec<(u32, u32)>,
    /// Log of class merges `(kept root, absorbed root)`, in merge order.
    /// Consumed by theory-combination listeners (the incremental kernel uses
    /// it to spot merges that invalidate linear-arithmetic atom keys).
    merges: Vec<(TermId, TermId)>,
    /// `false` when interns/merges happened since the last full rebuild —
    /// lets a quiescent [`Congruence::rebuild`] return in O(1) instead of
    /// re-scanning every term (critical once the closure is persistent).
    clean: bool,
}

/// A restore point for [`Congruence::undo_to`].
#[derive(Clone, Debug)]
pub struct CcSnapshot {
    terms_len: usize,
    trail_len: usize,
    merges_len: usize,
    contradiction: bool,
    clean: bool,
    /// Pending injectivity equalities are normally drained by `rebuild`;
    /// a snapshot taken mid-contradiction may still carry some.
    pending: Vec<(TermId, TermId)>,
}

impl Congruence {
    /// Creates an empty congruence-closure context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if a contradiction (distinct values equated) was found.
    pub fn contradictory(&self) -> bool {
        self.contradiction
    }

    /// Interns an expression and returns its term id.
    pub fn intern(&mut self, e: &Expr) -> TermId {
        let (head, child_exprs): (TermHead, Vec<&Expr>) = match e {
            Expr::Var(v) => (TermHead::Var(*v), vec![]),
            Expr::LVar(s) => (TermHead::LVar(*s), vec![]),
            Expr::PVar(s) => (TermHead::PVar(*s), vec![]),
            Expr::Int(i) => (TermHead::Int(*i), vec![]),
            Expr::Bool(b) => (TermHead::Bool(*b), vec![]),
            Expr::Loc(l) => (TermHead::Loc(*l), vec![]),
            Expr::Unit => (TermHead::Unit, vec![]),
            Expr::Ctor(tag, args) => (TermHead::Ctor(*tag), args.iter().collect()),
            Expr::Tuple(args) => (TermHead::Tuple, args.iter().collect()),
            Expr::SeqLit(args) => (TermHead::SeqLit, args.iter().collect()),
            Expr::UnOp(op, a) => (TermHead::UnOp(*op), vec![a.as_ref()]),
            Expr::BinOp(op, a, b) => (TermHead::BinOp(*op), vec![a.as_ref(), b.as_ref()]),
            Expr::NOp(op, args) => (TermHead::NOp(*op), args.iter().collect()),
            Expr::Ite(c, t, els) => (TermHead::Ite, vec![c.as_ref(), t.as_ref(), els.as_ref()]),
            Expr::App(name, args) => (TermHead::App(*name), args.iter().collect()),
        };
        let children: Vec<TermId> = child_exprs.into_iter().map(|c| self.intern(c)).collect();
        self.intern_node(head, children)
    }

    fn intern_node(&mut self, head: TermHead, children: Vec<TermId>) -> TermId {
        if let Some(&id) = self.intern.get(&(head.clone(), children.clone())) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Term {
            head: head.clone(),
            children: children.clone(),
        });
        self.parent.push(id.0);
        self.intern.insert((head, children), id);
        // A new term can be congruent to an existing one (interning `f(a)`
        // when `f(b)` exists and `a ~ b`): the next rebuild must look.
        self.clean = false;
        id
    }

    /// The single funnel for union-find writes: logs the previous value so
    /// the trail can restore it.
    fn set_parent(&mut self, idx: u32, new: u32) {
        self.trail.push((idx, self.parent[idx as usize]));
        self.parent[idx as usize] = new;
    }

    /// Takes a restore point for [`Congruence::undo_to`].
    pub fn snapshot(&self) -> CcSnapshot {
        CcSnapshot {
            terms_len: self.terms.len(),
            trail_len: self.trail.len(),
            merges_len: self.merges.len(),
            contradiction: self.contradiction,
            clean: self.clean,
            pending: self.pending.clone(),
        }
    }

    /// Restores the exact state of an earlier [`Congruence::snapshot`] in
    /// O(changes since the snapshot): union-find writes are rewound from the
    /// trail, terms interned since are un-interned, and the merge log,
    /// contradiction flag and pending queue are rolled back.
    pub fn undo_to(&mut self, snap: &CcSnapshot) {
        while self.trail.len() > snap.trail_len {
            let (idx, old) = self.trail.pop().unwrap();
            self.parent[idx as usize] = old;
        }
        while self.terms.len() > snap.terms_len {
            let term = self.terms.pop().unwrap();
            self.intern.remove(&(term.head, term.children));
        }
        self.parent.truncate(snap.terms_len);
        self.merges.truncate(snap.merges_len);
        self.contradiction = snap.contradiction;
        self.clean = snap.clean;
        self.pending = snap.pending.clone();
    }

    /// The class merges performed so far, in order (`(kept, absorbed)`
    /// roots). Indices into this log are stable until an
    /// [`Congruence::undo_to`] truncates it.
    pub fn merge_log(&self) -> &[(TermId, TermId)] {
        &self.merges
    }

    /// Union-find: find with path compression (compressions go through the
    /// trail so undo stays exact).
    pub fn find(&mut self, id: TermId) -> TermId {
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = id.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.set_parent(cur, root);
            cur = next;
        }
        TermId(root)
    }

    /// Asserts an equality between two expressions.
    pub fn assert_eq_exprs(&mut self, a: &Expr, b: &Expr) {
        let ta = self.intern(a);
        let tb = self.intern(b);
        self.merge(ta, tb);
        self.rebuild();
    }

    /// Asserts equality between two already-interned terms.
    pub fn merge(&mut self, a: TermId, b: TermId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Injectivity / conflict detection between value heads.
        let ha = self.terms[ra.0 as usize].head.clone();
        let hb = self.terms[rb.0 as usize].head.clone();
        if ha.is_value_head() && hb.is_value_head() {
            if ha != hb {
                self.contradiction = true;
            } else if let (TermHead::Ctor(_), TermHead::Ctor(_)) = (&ha, &hb) {
                let ca = self.terms[ra.0 as usize].children.clone();
                let cb = self.terms[rb.0 as usize].children.clone();
                if ca.len() == cb.len() {
                    for (x, y) in ca.into_iter().zip(cb) {
                        self.pending.push((x, y));
                    }
                }
            }
        }
        // SeqLit injectivity (same length literal sequences).
        if let (TermHead::SeqLit, TermHead::SeqLit) = (&ha, &hb) {
            let ca = self.terms[ra.0 as usize].children.clone();
            let cb = self.terms[rb.0 as usize].children.clone();
            if ca.len() != cb.len() {
                self.contradiction = true;
            } else {
                for (x, y) in ca.into_iter().zip(cb) {
                    self.pending.push((x, y));
                }
            }
        }
        // Tuple injectivity.
        if let (TermHead::Tuple, TermHead::Tuple) = (&ha, &hb) {
            let ca = self.terms[ra.0 as usize].children.clone();
            let cb = self.terms[rb.0 as usize].children.clone();
            if ca.len() == cb.len() {
                for (x, y) in ca.into_iter().zip(cb) {
                    self.pending.push((x, y));
                }
            }
        }
        // Prefer keeping a value head as the representative so that
        // `rep_is_value` queries work.
        let (keep, absorb) = if hb.is_value_head() && !ha.is_value_head() {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.set_parent(absorb.0, keep.0);
        self.merges.push((keep, absorb));
        self.clean = false;
    }

    /// Propagates congruence and pending injectivity equalities to fixpoint.
    /// O(1) when nothing was interned or merged since the last rebuild — the
    /// persistent incremental state calls this after every assertion, and
    /// most calls find the closure already quiescent.
    pub fn rebuild(&mut self) {
        if self.clean && self.pending.is_empty() {
            return;
        }
        let mut normalize_rounds = 0;
        loop {
            // Merge pending injectivity-derived equalities.
            let pending = std::mem::take(&mut self.pending);
            let had_pending = !pending.is_empty();
            for (a, b) in pending {
                self.merge(a, b);
            }
            // Congruence pass: O(n^2) signature matching (fine at our scale).
            let n = self.terms.len();
            let mut sig: HashMap<(TermHead, Vec<TermId>), TermId> = HashMap::new();
            let mut merged = false;
            for i in 0..n {
                let head = self.terms[i].head.clone();
                if head.is_value_head() && self.terms[i].children.is_empty() {
                    continue;
                }
                let children: Vec<TermId> = self.terms[i]
                    .children
                    .clone()
                    .into_iter()
                    .map(|c| self.find(c))
                    .collect();
                let rep = self.find(TermId(i as u32));
                match sig.get(&(head.clone(), children.clone())) {
                    Some(&other) => {
                        let other_rep = self.find(other);
                        if other_rep != rep {
                            self.merge(other_rep, rep);
                            merged = true;
                        }
                    }
                    None => {
                        sig.insert((head, children), rep);
                    }
                }
            }
            if self.contradiction {
                break;
            }
            if !merged && !had_pending && self.pending.is_empty() {
                // Quiescent under pure congruence: try interpreted
                // normalisation, which may unlock further merges. Bounded so
                // a pathological simplify/merge interplay cannot loop.
                if normalize_rounds < 4 && self.normalize_pass() {
                    normalize_rounds += 1;
                    continue;
                }
                break;
            }
        }
        self.clean = true;
    }

    /// One interpreted-normalisation pass: for every term with an
    /// interpreted head, re-simplify it with each child replaced by a
    /// concrete member of its class (literal, constructor, sequence or
    /// tuple) and merge the term with the simplified form when it reduces.
    /// Returns whether anything was merged.
    fn normalize_pass(&mut self) -> bool {
        // Map each class representative to its most concrete member (lowest
        // id for determinism).
        let n = self.terms.len();
        let mut concrete: HashMap<TermId, TermId> = HashMap::new();
        for i in 0..n {
            let head = &self.terms[i].head;
            if head.is_value_head() || matches!(head, TermHead::SeqLit | TermHead::Tuple) {
                let rep = self.find(TermId(i as u32));
                concrete.entry(rep).or_insert(TermId(i as u32));
            }
        }
        let mut changed = false;
        for i in 0..n {
            let head = self.terms[i].head.clone();
            if !matches!(
                head,
                TermHead::UnOp(_) | TermHead::BinOp(_) | TermHead::NOp(_) | TermHead::Ite
            ) {
                continue;
            }
            let children = self.terms[i].children.clone();
            let child_exprs: Vec<Expr> = children
                .iter()
                .map(|&c| self.concrete_expr(c, &concrete, 6))
                .collect();
            let e = mk_expr(&head, child_exprs);
            let s = simplify(&e);
            if s != e {
                let ts = self.intern(&s);
                let ri = self.find(TermId(i as u32));
                let rs = self.find(ts);
                if ri != rs {
                    self.merge(ri, rs);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Reconstructs an expression for `id`, steering through each class's
    /// concrete member where one exists. Depth-limited: union-find classes
    /// can relate a term to one of its own subterms (`x ~ f(x)`), so the
    /// walk must not chase representatives forever.
    fn concrete_expr(
        &mut self,
        id: TermId,
        concrete: &HashMap<TermId, TermId>,
        depth: usize,
    ) -> Expr {
        let use_id = if depth > 0 {
            let rep = self.find(id);
            concrete.get(&rep).copied().unwrap_or(id)
        } else {
            id
        };
        let term = self.terms[use_id.0 as usize].clone();
        let children: Vec<Expr> = term
            .children
            .iter()
            .map(|&c| self.concrete_expr(c, concrete, depth.saturating_sub(1)))
            .collect();
        mk_expr(&term.head, children)
    }

    /// Are the two expressions known to be equal?
    pub fn are_equal(&mut self, a: &Expr, b: &Expr) -> bool {
        let ta = self.intern(a);
        let tb = self.intern(b);
        self.rebuild();
        self.find(ta) == self.find(tb)
    }

    /// Are the two expressions known to be distinct (different value heads in
    /// merged classes)?
    pub fn are_distinct(&mut self, a: &Expr, b: &Expr) -> bool {
        let ta = self.intern(a);
        let tb = self.intern(b);
        self.rebuild();
        let ra = self.find(ta);
        let rb = self.find(tb);
        if ra == rb {
            return false;
        }
        let ha = self.terms[ra.0 as usize].head.clone();
        let hb = self.terms[rb.0 as usize].head.clone();
        if ha.is_value_head() && hb.is_value_head() {
            match (&ha, &hb) {
                (TermHead::Ctor(t1), TermHead::Ctor(t2)) if t1 == t2 => {
                    // Same tag: distinct only if some child pair is distinct.
                    false
                }
                _ => ha != hb,
            }
        } else {
            false
        }
    }

    /// Returns the representative expression head of the class of `e`, if the
    /// class contains a value (literal or constructor).
    pub fn value_head_of(&mut self, e: &Expr) -> Option<TermHead> {
        let t = self.intern(e);
        self.rebuild();
        let r = self.find(t);
        let h = self.terms[r.0 as usize].head.clone();
        if h.is_value_head() {
            Some(h)
        } else {
            None
        }
    }

    /// The representative term id of an expression (after rebuild).
    pub fn rep_of(&mut self, e: &Expr) -> TermId {
        let t = self.intern(e);
        self.rebuild();
        self.find(t)
    }

    /// Number of interned terms (for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Rebuilds an expression from a term head and child expressions (the
/// inverse of the destructuring in [`Congruence::intern`]).
fn mk_expr(head: &TermHead, children: Vec<Expr>) -> Expr {
    let mut it = children.into_iter();
    match head {
        TermHead::Var(v) => Expr::Var(*v),
        TermHead::LVar(s) => Expr::LVar(*s),
        TermHead::PVar(s) => Expr::PVar(*s),
        TermHead::Int(i) => Expr::Int(*i),
        TermHead::Bool(b) => Expr::Bool(*b),
        TermHead::Loc(l) => Expr::Loc(*l),
        TermHead::Unit => Expr::Unit,
        TermHead::Ctor(tag) => Expr::Ctor(*tag, it.collect()),
        TermHead::Tuple => Expr::Tuple(it.collect()),
        TermHead::SeqLit => Expr::SeqLit(it.collect()),
        TermHead::UnOp(op) => Expr::UnOp(*op, Box::new(it.next().expect("unop child"))),
        TermHead::BinOp(op) => {
            let a = it.next().expect("binop lhs");
            let b = it.next().expect("binop rhs");
            Expr::BinOp(*op, Box::new(a), Box::new(b))
        }
        TermHead::NOp(op) => Expr::NOp(*op, it.collect()),
        TermHead::Ite => {
            let c = it.next().expect("ite cond");
            let t = it.next().expect("ite then");
            let e = it.next().expect("ite else");
            Expr::Ite(Box::new(c), Box::new(t), Box::new(e))
        }
        TermHead::App(name) => Expr::App(*name, it.collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    #[test]
    fn transitivity() {
        let mut g = VarGen::new();
        let (a, b, c) = (g.fresh_expr(), g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&a, &b);
        cc.assert_eq_exprs(&b, &c);
        assert!(cc.are_equal(&a, &c));
    }

    #[test]
    fn congruence_over_function_symbols() {
        let mut g = VarGen::new();
        let (a, b) = (g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&a, &b);
        let fa = Expr::app("f", vec![a]);
        let fb = Expr::app("f", vec![b]);
        assert!(cc.are_equal(&fa, &fb));
    }

    #[test]
    fn congruence_over_seq_concat() {
        let mut g = VarGen::new();
        let (s, t, x) = (g.fresh_expr(), g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&s, &t);
        let c1 = Expr::seq_concat(Expr::seq(vec![x.clone()]), s);
        let c2 = Expr::seq_concat(Expr::seq(vec![x]), t);
        assert!(cc.are_equal(&c1, &c2));
    }

    #[test]
    fn distinct_int_literals_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&Expr::Int(1), &Expr::Int(2));
        assert!(cc.contradictory());
    }

    #[test]
    fn distinct_ctor_tags_conflict() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&Expr::none(), &Expr::some(x));
        assert!(cc.contradictory());
    }

    #[test]
    fn ctor_injectivity_propagates() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&Expr::some(x.clone()), &Expr::some(y.clone()));
        assert!(cc.are_equal(&x, &y));
    }

    #[test]
    fn injectivity_derives_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&Expr::some(Expr::Int(1)), &Expr::some(Expr::Int(2)));
        assert!(cc.contradictory());
    }

    #[test]
    fn are_distinct_for_different_values() {
        let mut cc = Congruence::new();
        assert!(cc.are_distinct(&Expr::Int(1), &Expr::Int(2)));
        assert!(!cc.are_distinct(&Expr::Int(1), &Expr::Int(1)));
    }

    #[test]
    fn value_head_found_through_equality() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&x, &Expr::none());
        assert_eq!(
            cc.value_head_of(&x),
            Some(TermHead::Ctor(Symbol::new("Option::None")))
        );
    }

    #[test]
    fn snapshot_undo_restores_equalities_exactly() {
        let mut g = VarGen::new();
        let (a, b, c) = (g.fresh_expr(), g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&a, &b);
        let len_before = cc.len();
        let snap = cc.snapshot();

        cc.assert_eq_exprs(&b, &c);
        assert!(cc.are_equal(&a, &c));
        cc.undo_to(&snap);

        assert!(cc.are_equal(&a, &b), "outer equality survives the undo");
        assert!(!cc.are_equal(&a, &c), "inner equality is gone");
        // `are_equal` interned `c` again after the undo removed it.
        assert_eq!(cc.len(), len_before + 1);
    }

    #[test]
    fn snapshot_undo_restores_contradiction_flag() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&x, &Expr::Int(1));
        let snap = cc.snapshot();
        cc.assert_eq_exprs(&x, &Expr::Int(2));
        assert!(cc.contradictory());
        cc.undo_to(&snap);
        assert!(!cc.contradictory());
        assert!(cc.are_equal(&x, &Expr::Int(1)));
    }

    #[test]
    fn nested_snapshots_unwind_one_at_a_time() {
        let mut g = VarGen::new();
        let (a, b, c, d) = (
            g.fresh_expr(),
            g.fresh_expr(),
            g.fresh_expr(),
            g.fresh_expr(),
        );
        let mut cc = Congruence::new();
        let outer = cc.snapshot();
        cc.assert_eq_exprs(&a, &b);
        let inner = cc.snapshot();
        cc.assert_eq_exprs(&c, &d);
        assert!(cc.are_equal(&c, &d));
        cc.undo_to(&inner);
        assert!(cc.are_equal(&a, &b));
        assert!(!cc.are_equal(&c, &d));
        cc.undo_to(&outer);
        assert!(!cc.are_equal(&a, &b));
        assert_eq!(cc.merge_log().len(), 0);
    }

    #[test]
    fn undo_unwinds_injectivity_and_congruence_merges() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh_expr(), g.fresh_expr());
        let mut cc = Congruence::new();
        let snap = cc.snapshot();
        // Injectivity propagates x ~ y, congruence then f(x) ~ f(y).
        cc.assert_eq_exprs(&Expr::some(x.clone()), &Expr::some(y.clone()));
        let fx = Expr::app("f", vec![x.clone()]);
        let fy = Expr::app("f", vec![y.clone()]);
        assert!(cc.are_equal(&fx, &fy));
        assert!(!cc.merge_log().is_empty());
        cc.undo_to(&snap);
        assert!(!cc.are_equal(&x, &y));
        assert!(!cc.are_equal(&fx, &fy));
    }

    #[test]
    fn seq_literal_length_mismatch_conflicts() {
        let mut g = VarGen::new();
        let x = g.fresh_expr();
        let mut cc = Congruence::new();
        cc.assert_eq_exprs(&Expr::seq(vec![x.clone()]), &Expr::seq(vec![x.clone(), x]));
        assert!(cc.contradictory());
    }
}
