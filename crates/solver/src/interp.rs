//! A concrete evaluator for expressions.
//!
//! This is *not* used during verification: it serves as a model-based oracle
//! for the property tests (if all facts of a query evaluate to `true` under a
//! concrete assignment, the solver must not have answered "unsatisfiable") and
//! as the reference semantics for the simplifier.

use crate::expr::{BinOp, Expr, NOp, SVar, UnOp};
use crate::symbol::Symbol;
use std::collections::{BTreeMap, HashMap};

/// A concrete value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    Int(i128),
    Bool(bool),
    Loc(u64),
    Unit,
    Ctor(Symbol, Vec<Value>),
    Tuple(Vec<Value>),
    Seq(Vec<Value>),
    /// A multiset of values (represented as sorted value/count pairs).
    Bag(BTreeMap<String, u64>),
}

impl Value {
    fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    fn key(&self) -> String {
        format!("{self:?}")
    }
}

/// A concrete assignment of symbolic variables.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: HashMap<SVar, Value>,
}

impl Env {
    pub fn new() -> Self {
        Env::default()
    }

    pub fn bind(&mut self, v: SVar, value: Value) {
        self.vars.insert(v, value);
    }

    pub fn get(&self, v: SVar) -> Option<&Value> {
        self.vars.get(&v)
    }
}

/// Evaluates an expression under an environment. Returns `None` when the
/// expression is ill-sorted or mentions an unbound variable.
pub fn eval(e: &Expr, env: &Env) -> Option<Value> {
    match e {
        Expr::Var(v) => env.get(*v).cloned(),
        Expr::LVar(_) | Expr::PVar(_) => None,
        Expr::Int(i) => Some(Value::Int(*i)),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        Expr::Loc(l) => Some(Value::Loc(*l)),
        Expr::Unit => Some(Value::Unit),
        Expr::Ctor(tag, args) => {
            let vals = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Option<Vec<_>>>()?;
            Some(Value::Ctor(*tag, vals))
        }
        Expr::Tuple(args) => {
            let vals = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Option<Vec<_>>>()?;
            Some(Value::Tuple(vals))
        }
        Expr::SeqLit(args) => {
            let vals = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Option<Vec<_>>>()?;
            Some(Value::Seq(vals))
        }
        Expr::UnOp(op, a) => {
            let va = eval(a, env)?;
            match op {
                UnOp::Not => Some(Value::Bool(!va.as_bool()?)),
                UnOp::Neg => Some(Value::Int(-va.as_int()?)),
                UnOp::SeqLen => Some(Value::Int(va.as_seq()?.len() as i128)),
                UnOp::BagOf => {
                    let mut bag = BTreeMap::new();
                    for item in va.as_seq()? {
                        *bag.entry(item.key()).or_insert(0) += 1;
                    }
                    Some(Value::Bag(bag))
                }
            }
        }
        Expr::BinOp(op, a, b) => {
            let va = eval(a, env)?;
            let vb = eval(b, env)?;
            eval_binop(*op, va, vb)
        }
        Expr::NOp(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Option<Vec<_>>>()?;
            match op {
                NOp::SeqSub => {
                    let s = vals[0].as_seq()?;
                    let from = vals[1].as_int()?;
                    let to = vals[2].as_int()?;
                    if from < 0 || to < from || to as usize > s.len() {
                        return None;
                    }
                    Some(Value::Seq(s[from as usize..to as usize].to_vec()))
                }
                NOp::SeqUpdate => {
                    let s = vals[0].as_seq()?;
                    let i = vals[1].as_int()?;
                    if i < 0 || i as usize >= s.len() {
                        return None;
                    }
                    let mut out = s.to_vec();
                    out[i as usize] = vals[2].clone();
                    Some(Value::Seq(out))
                }
            }
        }
        Expr::Ite(c, t, els) => {
            let vc = eval(c, env)?.as_bool()?;
            if vc {
                eval(t, env)
            } else {
                eval(els, env)
            }
        }
        Expr::App(_, _) => None,
    }
}

fn eval_binop(op: BinOp, va: Value, vb: Value) -> Option<Value> {
    use BinOp::*;
    match op {
        Add => Some(Value::Int(va.as_int()? + vb.as_int()?)),
        Sub => Some(Value::Int(va.as_int()? - vb.as_int()?)),
        Mul => Some(Value::Int(va.as_int()? * vb.as_int()?)),
        Div => {
            let d = vb.as_int()?;
            if d == 0 {
                None
            } else {
                Some(Value::Int(va.as_int()? / d))
            }
        }
        Rem => {
            let d = vb.as_int()?;
            if d == 0 {
                None
            } else {
                Some(Value::Int(va.as_int()? % d))
            }
        }
        Lt => Some(Value::Bool(va.as_int()? < vb.as_int()?)),
        Le => Some(Value::Bool(va.as_int()? <= vb.as_int()?)),
        Gt => Some(Value::Bool(va.as_int()? > vb.as_int()?)),
        Ge => Some(Value::Bool(va.as_int()? >= vb.as_int()?)),
        Eq => Some(Value::Bool(va == vb)),
        Ne => Some(Value::Bool(va != vb)),
        And => Some(Value::Bool(va.as_bool()? && vb.as_bool()?)),
        Or => Some(Value::Bool(va.as_bool()? || vb.as_bool()?)),
        Implies => Some(Value::Bool(!va.as_bool()? || vb.as_bool()?)),
        SeqAt => {
            let s = va.as_seq()?;
            let i = vb.as_int()?;
            if i < 0 || i as usize >= s.len() {
                None
            } else {
                Some(s[i as usize].clone())
            }
        }
        SeqConcat => {
            let mut out = va.as_seq()?.to_vec();
            out.extend(vb.as_seq()?.iter().cloned());
            Some(Value::Seq(out))
        }
        SeqRepeat => {
            let n = vb.as_int()?;
            if n < 0 {
                return None;
            }
            Some(Value::Seq(std::iter::repeat_n(va, n as usize).collect()))
        }
        BagUnion => match (va, vb) {
            (Value::Bag(mut a), Value::Bag(b)) => {
                for (k, v) in b {
                    *a.entry(k).or_insert(0) += v;
                }
                Some(Value::Bag(a))
            }
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    #[test]
    fn eval_arithmetic() {
        let env = Env::new();
        let e = Expr::add(Expr::Int(2), Expr::mul(Expr::Int(3), Expr::Int(4)));
        assert_eq!(eval(&e, &env), Some(Value::Int(14)));
    }

    #[test]
    fn eval_variable_lookup() {
        let mut g = VarGen::new();
        let v = g.fresh();
        let mut env = Env::new();
        env.bind(v, Value::Int(10));
        assert_eq!(eval(&Expr::Var(v), &env), Some(Value::Int(10)));
    }

    #[test]
    fn eval_unbound_variable_is_none() {
        let mut g = VarGen::new();
        let v = g.fresh();
        assert_eq!(eval(&Expr::Var(v), &Env::new()), None);
    }

    #[test]
    fn eval_sequence_ops() {
        let env = Env::new();
        let s = Expr::seq(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)]);
        assert_eq!(eval(&Expr::seq_len(s.clone()), &env), Some(Value::Int(3)));
        assert_eq!(
            eval(&Expr::seq_at(s.clone(), Expr::Int(1)), &env),
            Some(Value::Int(2))
        );
        assert_eq!(
            eval(&Expr::seq_sub(s, Expr::Int(1), Expr::Int(3)), &env),
            Some(Value::Seq(vec![Value::Int(2), Value::Int(3)]))
        );
    }

    #[test]
    fn eval_bag_ignores_order() {
        let env = Env::new();
        let a = Expr::bag_of(Expr::seq(vec![Expr::Int(1), Expr::Int(2)]));
        let b = Expr::bag_of(Expr::seq(vec![Expr::Int(2), Expr::Int(1)]));
        assert_eq!(eval(&a, &env), eval(&b, &env));
    }

    #[test]
    fn eval_out_of_bounds_is_none() {
        let env = Env::new();
        let s = Expr::seq(vec![Expr::Int(1)]);
        assert_eq!(eval(&Expr::seq_at(s, Expr::Int(5)), &env), None);
    }

    #[test]
    fn eval_ill_sorted_is_none() {
        let env = Env::new();
        let e = Expr::add(Expr::Bool(true), Expr::Int(1));
        assert_eq!(eval(&e, &env), None);
    }
}
