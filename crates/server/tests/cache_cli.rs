//! End-to-end tests of the `gillian` binary: the `cache` maintenance
//! subcommand and the `serve --cache-dir` persistence loop, driven exactly
//! as a user would — through process spawns, pipes and the filesystem.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn gillian() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gillian"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gillian-cache-cli-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one daemon lifetime over stdin/stdout: sends each request line,
/// collects one response line per request, then returns them.
fn daemon_round(cache_dir: &Path, requests: &[&str]) -> Vec<String> {
    let mut child = gillian()
        .args(["serve", "--cache-dir", cache_dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gillian serve");
    {
        let stdin = child.stdin.as_mut().unwrap();
        for req in requests {
            writeln!(stdin, "{req}").unwrap();
        }
    }
    let out = child
        .wait_with_output()
        .expect("daemon exits after shutdown");
    assert!(out.status.success(), "daemon exited with {:?}", out.status);
    let lines: Vec<String> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), requests.len(), "one response per request");
    lines
}

fn run_cache(args: &[&str]) -> String {
    let out = gillian()
        .arg("cache")
        .args(args)
        .output()
        .expect("run gillian cache");
    assert!(
        out.status.success(),
        "gillian cache {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn field(stats: &str, label: &str) -> String {
    stats
        .lines()
        .find(|l| l.starts_with(label))
        .unwrap_or_else(|| panic!("no `{label}` line in:\n{stats}"))
        .split_once(':')
        .unwrap()
        .1
        .trim()
        .to_string()
}

#[test]
fn serve_persists_across_restarts_and_cache_subcommand_maintains_the_store() {
    let dir = tempdir("roundtrip");
    let load = r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#;
    let verify = r#"{"id":2,"cmd":"verify"}"#;
    let shutdown = r#"{"id":3,"cmd":"shutdown"}"#;

    // Cold lifetime: every target is proved and written to disk.
    let cold = daemon_round(&dir, &[load, verify, shutdown]);
    assert!(cold[0].contains(r#""hydrated":[]"#), "{}", cold[0]);
    assert!(
        cold[1].contains(r#""reverified":["base","inc","inc2"]"#),
        "{}",
        cold[1]
    );

    // Warm lifetime, same cache dir: load hydrates, verify re-proves
    // nothing. This is the restart contract the smoke script also checks.
    let warm = daemon_round(&dir, &[load, verify, shutdown]);
    assert!(
        warm[0].contains(r#""hydrated":["base","inc","inc2"]"#),
        "{}",
        warm[0]
    );
    assert!(warm[1].contains(r#""reverified":[]"#), "{}", warm[1]);
    assert!(
        warm[1].contains(r#""cached":["base","inc","inc2"]"#),
        "{}",
        warm[1]
    );

    // `cache stats` sees the records and the warm run's perfect hit rate.
    let dirs = ["--dir", dir.to_str().unwrap()];
    let stats = run_cache(&[&["stats"], &dirs[..]].concat());
    assert_eq!(field(&stats, "records"), "3");
    assert!(field(&stats, "bytes").parse::<u64>().unwrap() > 0);
    assert!(
        field(&stats, "last run").starts_with("3 hit / 0 miss / 0 written (100.0% hit rate)"),
        "{stats}"
    );

    // `cache gc` keeps the store under a byte budget, evicting
    // least-recently-used records first.
    let gc = run_cache(&[&["gc", "--max-bytes", "1"], &dirs[..]].concat());
    assert!(gc.contains("evicted 3 record(s)"), "{gc}");
    let stats = run_cache(&[&["stats"], &dirs[..]].concat());
    assert_eq!(field(&stats, "records"), "0");

    // Refill, then `cache clear` empties it completely.
    daemon_round(&dir, &[load, verify, shutdown]);
    let cleared = run_cache(&[&["clear"], &dirs[..]].concat());
    assert!(cleared.contains("cleared 3 record(s)"), "{cleared}");
    let stats = run_cache(&[&["stats"], &dirs[..]].concat());
    assert_eq!(field(&stats, "records"), "0");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_subcommand_rejects_bad_usage() {
    for bad in [
        vec!["cache"],
        vec!["cache", "defrag"],
        vec!["cache", "gc"],
        vec!["cache", "stats", "--max-bytes", "zero"],
    ] {
        let out = gillian().args(&bad).output().unwrap();
        assert!(!out.status.success(), "{bad:?} should fail");
    }
}
