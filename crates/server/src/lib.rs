//! # gillian-server
//!
//! `gillian serve` — a persistent verification daemon with
//! dependency-tracked incremental re-verification.
//!
//! A batch run pays the whole pipeline — program compilation, spec
//! elaboration, engine construction, every proof — on every invocation. The
//! daemon keeps the expensive immutable state alive between requests (the
//! hash-consing term arena, the compiled GIL program, the elaborated
//! specification context) and, crucially, *remembers which items each proof
//! read*: the engine's `Prog` lookups are recorded per verification target
//! and fingerprinted, so an `update_spec` request dirties only the
//! reverse-dependency cone of the edited item and the next `verify` answers
//! all other targets from the retained outcome cache.
//!
//! The wire protocol is newline-delimited JSON over stdin/stdout (or a Unix
//! socket behind `--socket`); see [`protocol`] for request shapes and
//! [`server`] for the response fields.

pub mod db;
pub mod depgraph;
pub mod fingerprint;
pub mod json;
pub mod protocol;
pub mod server;

pub use db::{chain_program, mode_label, parse_mode, workload, ProgramDb, Workload, WORKLOADS};
pub use depgraph::{DepKey, DepTracker};
pub use fingerprint::{
    fingerprint_key, fingerprint_lemma, fingerprint_pred, fingerprint_proc, fingerprint_proc_sig,
    fingerprint_spec,
};
pub use json::{parse, JsonError, Value};
pub use protocol::{parse_request, Envelope, Request};
pub use server::{
    serve_stdio, serve_stdio_shared, serve_stdio_with, serve_unix, DispatchError, ServerCore,
};
