//! A hand-rolled JSON value type, parser and writer.
//!
//! The reproduction carries no external dependencies, so the daemon protocol
//! ships its own (strict, allocation-friendly) JSON implementation. The
//! writer escapes strings through [`driver::json_escape`] — the same escaper
//! behind `VerificationReport::to_json` — so the report emitter and the
//! protocol parser are round-trip tested against each other.

use std::fmt;

/// A JSON value. Numbers keep their integer identity when they have one
/// (protocol ids and counters must not go through `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered (the protocol echoes objects back predictably).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks a key up in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value onto `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value re-parses as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => out.push_str(&driver::json_escape(s)),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&driver::json_escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; the whole input (modulo whitespace) must be
/// consumed.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = JsonParser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after JSON value"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            self.expect(b',')?;
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte sequence is valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let n = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            parse(r#"[1, "two", [3]]"#).unwrap(),
            Value::Array(vec![
                Value::Int(1),
                Value::str("two"),
                Value::Array(vec![Value::Int(3)]),
            ])
        );
        let obj = parse(r#"{"a": 1, "b": {"c": false}}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Value::Int(1)));
        assert_eq!(obj.get("b").unwrap().get("c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn string_escapes_round_trip() {
        // Every escape the writer produces, plus \uXXXX forms it does not.
        let nasty = "quote \" backslash \\ newline \n tab \t cr \r bell \u{0007} unicode é 🦀";
        let mut written = String::new();
        Value::str(nasty).write(&mut written);
        assert_eq!(parse(&written).unwrap(), Value::str(nasty));
        assert_eq!(parse(r#""Aé🦀""#).unwrap(), Value::str("Aé🦀"));
    }

    #[test]
    fn full_value_round_trips_through_writer() {
        let v = Value::Object(vec![
            ("id".to_owned(), Value::Int(7)),
            ("pi".to_owned(), Value::Float(3.25)),
            ("msg".to_owned(), Value::str("a \"quoted\"\npath\\to\\x")),
            (
                "xs".to_owned(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let mut out = String::new();
        v.write(&mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"bad \u{0001} ctrl\"").is_err());
        assert!(parse(r#""\ud800 unpaired""#).is_err());
    }

    #[test]
    fn integers_keep_identity_floats_reparse() {
        let mut out = String::new();
        Value::Int(i64::MAX).write(&mut out);
        assert_eq!(parse(&out).unwrap(), Value::Int(i64::MAX));
        let mut out = String::new();
        Value::Float(2.0).write(&mut out);
        assert_eq!(parse(&out).unwrap(), Value::Float(2.0));
    }
}
