//! Reverse-dependency tracking for incremental re-verification.
//!
//! During each target's verification the engine's [`Prog`] lookups are
//! recorded (see `gillian_engine::gil::DepSink`), yielding the set of
//! (kind, name) keys the proof *read*, each paired with the content
//! fingerprint of what was behind the key at the time. An update request
//! then only has to compare fingerprints: if the item behind a key changed,
//! the tracker dirties exactly the reverse-dependency cone of that key, and
//! the next `verify` answers every clean target from the retained outcome
//! cache.
//!
//! [`Prog`]: gillian_engine::gil::Prog

use driver::CaseOutcome;
use gillian_engine::gil::DepKind;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A dependency key: one item a verification target can read.
pub type DepKey = (DepKind, String);

/// Tracks, per verification target, what it read (with fingerprints), the
/// inverted edges, the dirty set, and the last known outcome.
#[derive(Debug, Default)]
pub struct DepTracker {
    /// target -> the keys it read during its last run, with the fingerprint
    /// each key had at that time.
    deps: HashMap<String, Vec<(DepKey, u64)>>,
    /// key -> targets whose last run read it.
    rdeps: BTreeMap<DepKey, BTreeSet<String>>,
    /// Targets that must re-run on the next `verify`.
    dirty: BTreeSet<String>,
    /// Last outcome per target; only trusted while the target is clean.
    cache: HashMap<String, CaseOutcome>,
}

impl DepTracker {
    /// A fresh tracker where every known target starts dirty (nothing has
    /// been verified yet).
    pub fn new<I: IntoIterator<Item = String>>(targets: I) -> DepTracker {
        DepTracker {
            dirty: targets.into_iter().collect(),
            ..DepTracker::default()
        }
    }

    /// Whether `target` needs a re-run: explicitly dirtied, or never cached.
    pub fn is_dirty(&self, target: &str) -> bool {
        self.dirty.contains(target) || !self.cache.contains_key(target)
    }

    /// Record the result of (re-)running `target`: replace its dependency
    /// edges, rebuild the inverted edges, store the outcome, mark it clean.
    pub fn record(&mut self, target: &str, reads: Vec<(DepKey, u64)>, outcome: CaseOutcome) {
        if let Some(old) = self.deps.get(target) {
            for (key, _) in old {
                if let Some(set) = self.rdeps.get_mut(key) {
                    set.remove(target);
                    if set.is_empty() {
                        self.rdeps.remove(key);
                    }
                }
            }
        }
        for (key, _) in &reads {
            self.rdeps
                .entry(key.clone())
                .or_default()
                .insert(target.to_string());
        }
        self.deps.insert(target.to_string(), reads);
        self.cache.insert(target.to_string(), outcome);
        self.dirty.remove(target);
    }

    /// The cached outcome for a clean target.
    pub fn cached(&self, target: &str) -> Option<&CaseOutcome> {
        self.cache.get(target)
    }

    /// Mark every recorded reader of `key` dirty iff the key's current
    /// fingerprint differs from the one the reader saw. Returns the targets
    /// newly dirtied, sorted.
    pub fn dirty_key(&mut self, key: &DepKey, current_fingerprint: u64) -> Vec<String> {
        let readers: Vec<String> = match self.rdeps.get(key) {
            Some(set) => set.iter().cloned().collect(),
            None => return Vec::new(),
        };
        let mut dirtied = Vec::new();
        for target in readers {
            let seen = self
                .deps
                .get(&target)
                .and_then(|reads| reads.iter().find(|(k, _)| k == key))
                .map(|(_, fp)| *fp);
            if seen != Some(current_fingerprint) && self.dirty.insert(target.clone()) {
                dirtied.push(target);
            }
        }
        dirtied
    }

    /// Unconditionally dirty every recorded reader of `key` (used when the
    /// caller already knows the item changed, e.g. `update_fn`).
    pub fn dirty_key_force(&mut self, key: &DepKey) -> Vec<String> {
        let readers: Vec<String> = match self.rdeps.get(key) {
            Some(set) => set.iter().cloned().collect(),
            None => return Vec::new(),
        };
        let mut dirtied = Vec::new();
        for target in readers {
            if self.dirty.insert(target.clone()) {
                dirtied.push(target);
            }
        }
        dirtied
    }

    /// Number of currently dirty targets.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The keys `target` read during its last run, if any.
    pub fn deps_of(&self, target: &str) -> Option<&[(DepKey, u64)]> {
        self.deps.get(target).map(|v| v.as_slice())
    }

    /// The recorded readers of `key`, sorted.
    pub fn readers_of(&self, key: &DepKey) -> Vec<String> {
        self.rdeps
            .get(key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use driver::{CaseOutcome, TargetKind};
    use gillian_rust::verifier::CaseReport;

    fn ok_outcome() -> CaseOutcome {
        CaseOutcome {
            kind: TargetKind::Function,
            report: CaseReport {
                name: "t".to_string(),
                verified: true,
                elapsed: std::time::Duration::ZERO,
                diagnostic: None,
            },
        }
    }

    fn key(kind: DepKind, name: &str) -> DepKey {
        (kind, name.to_string())
    }

    #[test]
    fn new_targets_start_dirty_and_record_cleans() {
        let mut t = DepTracker::new(["f".to_string(), "g".to_string()]);
        assert!(t.is_dirty("f"));
        assert!(t.is_dirty("g"));
        t.record("f", vec![(key(DepKind::Spec, "f"), 1)], ok_outcome());
        assert!(!t.is_dirty("f"));
        assert!(t.is_dirty("g"));
        assert!(t.cached("f").is_some());
    }

    #[test]
    fn unknown_target_counts_as_dirty() {
        let t = DepTracker::default();
        assert!(t.is_dirty("never_seen"));
    }

    #[test]
    fn dirty_key_hits_only_readers_with_stale_fingerprints() {
        let mut t = DepTracker::default();
        t.record("inc", vec![(key(DepKind::Spec, "inc"), 10)], ok_outcome());
        t.record(
            "inc2",
            vec![
                (key(DepKind::Spec, "inc2"), 20),
                (key(DepKind::Spec, "inc"), 10),
            ],
            ok_outcome(),
        );
        t.record("base", vec![(key(DepKind::Spec, "base"), 30)], ok_outcome());

        // Same fingerprint: nothing to do.
        assert!(t.dirty_key(&key(DepKind::Spec, "inc"), 10).is_empty());
        assert_eq!(t.dirty_count(), 0);

        // Changed fingerprint: both readers of Spec(inc) go dirty; base stays.
        let dirtied = t.dirty_key(&key(DepKind::Spec, "inc"), 11);
        assert_eq!(dirtied, vec!["inc".to_string(), "inc2".to_string()]);
        assert!(t.is_dirty("inc"));
        assert!(t.is_dirty("inc2"));
        assert!(!t.is_dirty("base"));

        // Re-dirtying is idempotent.
        assert!(t.dirty_key(&key(DepKind::Spec, "inc"), 12).is_empty());
    }

    #[test]
    fn record_replaces_stale_reverse_edges() {
        let mut t = DepTracker::default();
        t.record("f", vec![(key(DepKind::Pred, "p"), 1)], ok_outcome());
        assert_eq!(t.readers_of(&key(DepKind::Pred, "p")), vec!["f"]);
        // Second run no longer reads p.
        t.record("f", vec![(key(DepKind::Pred, "q"), 2)], ok_outcome());
        assert!(t.readers_of(&key(DepKind::Pred, "p")).is_empty());
        assert_eq!(t.readers_of(&key(DepKind::Pred, "q")), vec!["f"]);
        // Changing p now dirties nothing.
        assert!(t.dirty_key(&key(DepKind::Pred, "p"), 99).is_empty());
    }

    #[test]
    fn dirty_key_force_ignores_fingerprints() {
        let mut t = DepTracker::default();
        t.record("f", vec![(key(DepKind::Proc, "f"), 5)], ok_outcome());
        let dirtied = t.dirty_key_force(&key(DepKind::Proc, "f"));
        assert_eq!(dirtied, vec!["f".to_string()]);
    }
}
