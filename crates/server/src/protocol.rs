//! The daemon's wire protocol: newline-delimited JSON requests.
//!
//! One request per line, one response per line. Every request is an object
//! with a `cmd` field and an optional numeric `id` echoed back in the
//! response:
//!
//! ```json
//! {"id":1,"cmd":"load","workload":"chain","mode":"fc"}
//! {"id":2,"cmd":"verify"}
//! {"id":3,"cmd":"verify","targets":["inc2"],"force":true,"timeout_ms":5000}
//! {"id":4,"cmd":"update_spec","fn":"inc","requires":["x@ < 500"],"ensures":["result@ == x@ + 1"]}
//! {"id":5,"cmd":"update_fn","fn":"inc"}
//! {"id":6,"cmd":"stats"}
//! {"id":7,"cmd":"shutdown"}
//! ```

use crate::json::{parse, Value};

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Load {
        workload: String,
        mode: Option<String>,
        workers: Option<usize>,
        branch_parallelism: Option<usize>,
    },
    Verify {
        targets: Option<Vec<String>>,
        force: bool,
        /// Optional per-target wall-clock budget for this request only, in
        /// milliseconds. Applied around the run and restored afterwards, so
        /// one slow client cannot change the daemon's configuration for the
        /// next one.
        timeout_ms: Option<u64>,
    },
    UpdateSpec {
        func: String,
        requires: Vec<String>,
        ensures: Vec<String>,
    },
    UpdateFn {
        func: String,
    },
    /// Runs the static analyzer over the loaded program and returns every
    /// finding (no proof search).
    Lint,
    Stats,
    Shutdown,
}

/// A request line together with its echo id. The request itself may have
/// failed to decode; the server still answers on the same id.
#[derive(Debug)]
pub struct Envelope {
    pub id: Option<i64>,
    pub request: Result<Request, String>,
}

/// Decodes one request line.
pub fn parse_request(line: &str) -> Envelope {
    let value = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Envelope {
                id: None,
                request: Err(format!("invalid JSON at byte {}: {}", e.offset, e.message)),
            }
        }
    };
    let id = value.get("id").and_then(Value::as_i64);
    Envelope {
        id,
        request: decode(&value),
    }
}

fn decode(value: &Value) -> Result<Request, String> {
    if !matches!(value, Value::Object(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let cmd = value
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;
    match cmd {
        "load" => Ok(Request::Load {
            workload: required_str(value, "workload")?,
            mode: optional_str(value, "mode")?,
            workers: optional_usize(value, "workers")?,
            branch_parallelism: optional_usize(value, "branch_parallelism")?,
        }),
        "verify" => {
            let targets = match value.get("targets") {
                None | Some(Value::Null) => None,
                Some(Value::Array(items)) => {
                    let mut names = Vec::with_capacity(items.len());
                    for item in items {
                        match item.as_str() {
                            Some(s) => names.push(s.to_string()),
                            None => return Err("`targets` must be an array of strings".to_string()),
                        }
                    }
                    Some(names)
                }
                Some(_) => return Err("`targets` must be an array of strings".to_string()),
            };
            let force = match value.get("force") {
                None | Some(Value::Null) => false,
                Some(Value::Bool(b)) => *b,
                Some(_) => return Err("`force` must be a boolean".to_string()),
            };
            let timeout_ms = match value.get("timeout_ms") {
                None | Some(Value::Null) => None,
                Some(v) => match v.as_i64() {
                    Some(n) if n > 0 => Some(n as u64),
                    _ => return Err("`timeout_ms` must be a positive integer".to_string()),
                },
            };
            Ok(Request::Verify {
                targets,
                force,
                timeout_ms,
            })
        }
        "update_spec" => Ok(Request::UpdateSpec {
            func: required_str(value, "fn")?,
            requires: clause_list(value, "requires")?,
            ensures: clause_list(value, "ensures")?,
        }),
        "update_fn" => Ok(Request::UpdateFn {
            func: required_str(value, "fn")?,
        }),
        "lint" => Ok(Request::Lint),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown cmd `{other}` (known: load, verify, update_spec, update_fn, lint, stats, shutdown)"
        )),
    }
}

fn required_str(value: &Value, field: &str) -> Result<String, String> {
    value
        .get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{field}`"))
}

fn optional_str(value: &Value, field: &str) -> Result<Option<String>, String> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{field}` must be a string")),
    }
}

fn optional_usize(value: &Value, field: &str) -> Result<Option<usize>, String> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => match v.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n as usize)),
            _ => Err(format!("`{field}` must be a non-negative integer")),
        },
    }
}

fn clause_list(value: &Value, field: &str) -> Result<Vec<String>, String> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => out.push(s.to_string()),
                    None => return Err(format!("`{field}` must be an array of strings")),
                }
            }
            Ok(out)
        }
        Some(_) => Err(format!("`{field}` must be an array of strings")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_decodes_with_options() {
        let env =
            parse_request(r#"{"id":1,"cmd":"load","workload":"chain","mode":"fc","workers":2}"#);
        assert_eq!(env.id, Some(1));
        assert_eq!(
            env.request.unwrap(),
            Request::Load {
                workload: "chain".to_string(),
                mode: Some("fc".to_string()),
                workers: Some(2),
                branch_parallelism: None,
            }
        );
    }

    #[test]
    fn verify_defaults_and_targets() {
        let env = parse_request(r#"{"cmd":"verify"}"#);
        assert_eq!(
            env.request.unwrap(),
            Request::Verify {
                targets: None,
                force: false,
                timeout_ms: None,
            }
        );
        let env = parse_request(
            r#"{"id":2,"cmd":"verify","targets":["inc"],"force":true,"timeout_ms":1500}"#,
        );
        assert_eq!(
            env.request.unwrap(),
            Request::Verify {
                targets: Some(vec!["inc".to_string()]),
                force: true,
                timeout_ms: Some(1500),
            }
        );
        let env = parse_request(r#"{"cmd":"verify","timeout_ms":0}"#);
        assert!(env.request.unwrap_err().contains("timeout_ms"));
    }

    #[test]
    fn update_spec_decodes_clauses() {
        let env = parse_request(
            r#"{"id":4,"cmd":"update_spec","fn":"inc","requires":["x@ < 500"],"ensures":["result@ == x@ + 1"]}"#,
        );
        assert_eq!(
            env.request.unwrap(),
            Request::UpdateSpec {
                func: "inc".to_string(),
                requires: vec!["x@ < 500".to_string()],
                ensures: vec!["result@ == x@ + 1".to_string()],
            }
        );
    }

    #[test]
    fn lint_decodes() {
        let env = parse_request(r#"{"id":7,"cmd":"lint"}"#);
        assert_eq!(env.id, Some(7));
        assert_eq!(env.request.unwrap(), Request::Lint);
    }

    #[test]
    fn errors_keep_the_id_when_decodable() {
        let env = parse_request(r#"{"id":9,"cmd":"nope"}"#);
        assert_eq!(env.id, Some(9));
        assert!(env.request.unwrap_err().contains("unknown cmd"));

        let env = parse_request("not json");
        assert_eq!(env.id, None);
        assert!(env.request.is_err());

        let env = parse_request(r#"{"id":3,"cmd":"update_spec"}"#);
        assert_eq!(env.id, Some(3));
        assert!(env.request.unwrap_err().contains("`fn`"));
    }
}
