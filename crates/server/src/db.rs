//! The daemon's program database: a loaded workload, its live
//! [`HybridSession`], and a side [`GilsoniteCtx`] used to re-elaborate
//! specifications on `update_spec` requests.
//!
//! The registry exposes the paper's Table 1 case studies plus a small
//! `chain` demo program (`base`/`inc`/`inc2`, where `inc2` is verified
//! against `inc`'s *specification*, not its body) whose call structure makes
//! the dependency cone of a spec edit easy to observe over the wire.

use driver::HybridSession;
use gillian_rust::gilsonite::{lv, GilsoniteCtx, SpecMode};
use gillian_rust::types::Types;
use gillian_solver::Expr;
use rust_ir::{BinOp, BodyBuilder, Operand, Program, Ty};

/// One loadable verification workload.
pub struct Workload {
    /// Wire name (`{"cmd":"load","workload":...}`).
    pub name: &'static str,
    /// Session display name.
    pub session_name: &'static str,
    /// Builds the mini-MIR program.
    pub program: fn() -> Program,
    /// Registers ownership predicates and specifications.
    pub specs: fn(&Types, SpecMode) -> GilsoniteCtx,
    /// Verification targets, in registration order.
    pub functions: &'static [&'static str],
    /// Mode used when a `load` request does not name one.
    pub default_mode: SpecMode,
}

/// Every workload the daemon can serve.
pub const WORKLOADS: &[Workload] = &[
    Workload {
        name: "even_int",
        session_name: "EvenInt",
        program: case_studies::even_int::program,
        specs: case_studies::even_int::gilsonite,
        functions: case_studies::even_int::FUNCTIONS,
        default_mode: SpecMode::FunctionalCorrectness,
    },
    Workload {
        name: "linked_pair",
        session_name: "LP",
        program: case_studies::linked_pair::program,
        specs: case_studies::linked_pair::gilsonite,
        functions: case_studies::linked_pair::FUNCTIONS,
        default_mode: SpecMode::FunctionalCorrectness,
    },
    Workload {
        name: "linked_list",
        session_name: "LinkedList",
        program: case_studies::linked_list::program,
        specs: case_studies::linked_list::gilsonite,
        functions: case_studies::linked_list::FUNCTIONS,
        default_mode: SpecMode::FunctionalCorrectness,
    },
    Workload {
        name: "mini_vec",
        session_name: "MiniVec",
        program: case_studies::mini_vec::program,
        specs: case_studies::mini_vec::gilsonite,
        functions: case_studies::mini_vec::FUNCTIONS,
        default_mode: SpecMode::FunctionalCorrectness,
    },
    Workload {
        name: "chain",
        session_name: "Chain",
        program: chain_program,
        specs: chain_gilsonite,
        functions: &["base", "inc", "inc2"],
        default_mode: SpecMode::FunctionalCorrectness,
    },
];

/// Looks up a workload by wire name (with a couple of aliases).
pub fn workload(name: &str) -> Option<&'static Workload> {
    let canonical = match name {
        "lp" => "linked_pair",
        "ll" | "list" => "linked_list",
        "vec" => "mini_vec",
        other => other,
    };
    WORKLOADS.iter().find(|w| w.name == canonical)
}

/// Parses a wire mode string.
pub fn parse_mode(s: &str) -> Option<SpecMode> {
    match s {
        "ts" | "type-safety" | "type_safety" => Some(SpecMode::TypeSafety),
        "fc" | "functional-correctness" | "functional_correctness" => {
            Some(SpecMode::FunctionalCorrectness)
        }
        _ => None,
    }
}

/// Renders a mode for responses.
pub fn mode_label(mode: SpecMode) -> &'static str {
    match mode {
        SpecMode::TypeSafety => "ts",
        SpecMode::FunctionalCorrectness => "fc",
    }
}

/// A loaded workload: the immutable program side (interned terms, layouts,
/// elaborated specs) lives inside the session's verifier and is shared by
/// every subsequent request; `side_ctx` re-elaborates updated specs against
/// the same type registry.
pub struct ProgramDb {
    pub workload: &'static Workload,
    pub mode: SpecMode,
    pub session: HybridSession,
    pub side_ctx: GilsoniteCtx,
}

impl ProgramDb {
    /// Builds the session (and the side elaboration context) for a workload.
    pub fn load(
        name: &str,
        mode: Option<SpecMode>,
        workers: Option<usize>,
        branch_parallelism: Option<usize>,
    ) -> Result<ProgramDb, String> {
        let w = workload(name).ok_or_else(|| {
            let known: Vec<&str> = WORKLOADS.iter().map(|w| w.name).collect();
            format!("unknown workload `{name}` (known: {})", known.join(", "))
        })?;
        let mode = mode.unwrap_or(w.default_mode);
        let mut builder = HybridSession::builder()
            .name(w.session_name)
            .program((w.program)())
            .mode(mode)
            .specs(w.specs)
            .verify_fns(w.functions.iter().copied());
        if let Some(n) = workers {
            builder = builder.workers(n);
        }
        if let Some(n) = branch_parallelism {
            builder = builder.branch_parallelism(n);
        }
        let session = builder.build().map_err(|e| e.to_string())?;
        let side_ctx = (w.specs)(&session.verifier().types, mode);
        Ok(ProgramDb {
            workload: w,
            mode,
            session,
            side_ctx,
        })
    }
}

/// `base(x) = x`, `inc(x) = x + 1`, `inc2(x) = inc(inc(x))`.
///
/// `inc2` calls `inc` twice, and the engine resolves those calls through
/// `inc`'s registered specification — so editing `inc`'s spec must dirty
/// both `inc` (its own proof) and `inc2` (a spec-caller), while `base`
/// stays clean.
pub fn chain_program() -> Program {
    let mut p = Program::new("chain");

    let mut b = BodyBuilder::new("base", vec![("x", Ty::usize())], Ty::usize());
    b.ret_val(Operand::local("x"));
    p.add_fn(b.finish());

    let mut b = BodyBuilder::new("inc", vec![("x", Ty::usize())], Ty::usize());
    let y = b.local("y", Ty::usize());
    b.assign_binop(
        y.clone(),
        BinOp::Add,
        Operand::local("x"),
        Operand::usize(1),
    );
    b.ret_val(Operand::copy(y));
    p.add_fn(b.finish());

    let mut b = BodyBuilder::new("inc2", vec![("x", Ty::usize())], Ty::usize());
    let t1 = b.local("t1", Ty::usize());
    let t2 = b.local("t2", Ty::usize());
    let k1 = b.new_block();
    let k2 = b.new_block();
    b.call("inc", vec![], vec![Operand::local("x")], t1.clone(), k1);
    b.switch_to(k1);
    b.call("inc", vec![], vec![Operand::copy(t1)], t2.clone(), k2);
    b.switch_to(k2);
    b.ret_val(Operand::copy(t2));
    p.add_fn(b.finish());

    p
}

/// Functional-correctness specifications for the chain demo. The bounds on
/// `x` keep the `usize` additions provably in range; `inc2`'s proof only
/// goes through via `inc`'s contract.
pub fn chain_gilsonite(types: &Types, mode: SpecMode) -> GilsoniteCtx {
    let mut g = GilsoniteCtx::new(types.clone(), mode);
    let program = &types.program;

    let base = program.function("base").unwrap().clone();
    let spec = g.fn_spec(&base, vec![], vec![Expr::eq(lv("ret_repr"), lv("x_repr"))]);
    g.add_spec(spec);

    let inc = program.function("inc").unwrap().clone();
    let spec = g.fn_spec(
        &inc,
        vec![Expr::lt(lv("x_repr"), Expr::Int(1000))],
        vec![Expr::eq(
            lv("ret_repr"),
            Expr::add(lv("x_repr"), Expr::Int(1)),
        )],
    );
    g.add_spec(spec);

    let inc2 = program.function("inc2").unwrap().clone();
    let spec = g.fn_spec(
        &inc2,
        vec![Expr::lt(lv("x_repr"), Expr::Int(900))],
        vec![Expr::eq(
            lv("ret_repr"),
            Expr::add(lv("x_repr"), Expr::Int(2)),
        )],
    );
    g.add_spec(spec);

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_verifies_in_fc_mode() {
        let db = ProgramDb::load("chain", None, Some(1), Some(1)).unwrap();
        let report = db.session.verify_all();
        assert!(report.all_verified(), "{}", report.render_text());
        assert_eq!(report.cases.len(), 3);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let err = match ProgramDb::load("nope", None, None, None) {
            Err(e) => e,
            Ok(_) => panic!("load of an unknown workload must fail"),
        };
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(workload("lp").unwrap().name, "linked_pair");
        assert_eq!(workload("vec").unwrap().name, "mini_vec");
    }

    #[test]
    fn mode_parsing_round_trips() {
        assert_eq!(parse_mode("ts"), Some(SpecMode::TypeSafety));
        assert_eq!(parse_mode("fc"), Some(SpecMode::FunctionalCorrectness));
        assert_eq!(
            parse_mode(mode_label(SpecMode::TypeSafety)),
            Some(SpecMode::TypeSafety)
        );
        assert!(parse_mode("nope").is_none());
    }
}
