//! Content fingerprints of program items, keyed through the hash-consing
//! arena.
//!
//! The dependency tracker needs to know whether a spec/pred/lemma/proc
//! *changed* across an update, cheaply. Every expression inside an item is
//! interned into the session's persistent [`TermArena`] — structurally equal
//! expressions collapse to the same [`gillian_solver::TermId`] — and the
//! fingerprint hashes the resulting id stream together with structural tags,
//! names and flags. Within one daemon session (one arena) two items have the
//! same fingerprint iff they are structurally identical, so comparing two
//! u64s replaces deep equality walks on every update request.

use gillian_engine::gil::{Cmd, DepKind, LogicCmd, Proc, Prog};
use gillian_engine::{Asrt, Lemma, Pred, Spec};
use gillian_solver::{Expr, Symbol, TermArena};
use proof_cache::StableHasher;
use std::hash::{Hash, Hasher};

/// Fingerprint of whatever currently sits behind `(kind, name)` in `prog`.
/// Absent items get a stable sentinel — a lookup miss is still a dependency,
/// and the sentinel changing into a real fingerprint is exactly how "a spec
/// was added for a previously-unspecified callee" dirties its readers.
pub fn fingerprint_key(prog: &Prog, arena: &TermArena, kind: DepKind, name: Symbol) -> u64 {
    // Direct map access: fingerprinting must not pollute an open dependency
    // recording window, so it bypasses the recording lookups.
    match kind {
        DepKind::Proc => match prog.procs.get(&name) {
            Some(p) => fingerprint_proc(arena, p),
            None => absent(kind),
        },
        DepKind::Pred => match prog.preds.get(&name) {
            Some(p) => fingerprint_pred(arena, p),
            None => absent(kind),
        },
        DepKind::Spec => match prog.specs.get(&name) {
            Some(s) => fingerprint_spec(arena, s),
            None => absent(kind),
        },
        DepKind::Lemma => match prog.lemmas.get(&name) {
            Some(l) => fingerprint_lemma(arena, l),
            None => absent(kind),
        },
        DepKind::ProcSig => match prog.procs.get(&name) {
            Some(p) => fingerprint_proc_sig(p),
            None => absent(kind),
        },
    }
}

/// Fingerprint of a procedure's *signature* only (name + parameter list) —
/// what a spec-call site actually reads. Body edits leave it unchanged.
pub fn fingerprint_proc_sig(proc: &Proc) -> u64 {
    let mut h = StableHasher::new();
    0xA4u8.hash(&mut h);
    proc.name.hash(&mut h);
    proc.params.hash(&mut h);
    h.finish()
}

fn absent(kind: DepKind) -> u64 {
    let mut h = StableHasher::new();
    "absent".hash(&mut h);
    kind.hash(&mut h);
    h.finish()
}

pub fn fingerprint_spec(arena: &TermArena, spec: &Spec) -> u64 {
    let mut h = StableHasher::new();
    0xA0u8.hash(&mut h);
    spec.name.hash(&mut h);
    spec.trusted.hash(&mut h);
    asrt(&mut h, arena, &spec.pre);
    spec.posts.len().hash(&mut h);
    for p in &spec.posts {
        asrt(&mut h, arena, p);
    }
    h.finish()
}

pub fn fingerprint_pred(arena: &TermArena, pred: &Pred) -> u64 {
    let mut h = StableHasher::new();
    0xA1u8.hash(&mut h);
    pred.name.hash(&mut h);
    pred.params.hash(&mut h);
    pred.num_ins.hash(&mut h);
    pred.is_abstract.hash(&mut h);
    pred.unfold_on_branch.hash(&mut h);
    pred.definitions.len().hash(&mut h);
    for d in &pred.definitions {
        asrt(&mut h, arena, d);
    }
    h.finish()
}

pub fn fingerprint_lemma(arena: &TermArena, lemma: &Lemma) -> u64 {
    let mut h = StableHasher::new();
    0xA2u8.hash(&mut h);
    lemma.name.hash(&mut h);
    lemma.params.hash(&mut h);
    lemma.trusted.hash(&mut h);
    asrt(&mut h, arena, &lemma.hyp);
    lemma.concls.len().hash(&mut h);
    for c in &lemma.concls {
        asrt(&mut h, arena, c);
    }
    match &lemma.proof {
        None => 0u8.hash(&mut h),
        Some(cmds) => {
            1u8.hash(&mut h);
            cmds.len().hash(&mut h);
            for c in cmds {
                logic_cmd(&mut h, arena, c);
            }
        }
    }
    h.finish()
}

pub fn fingerprint_proc(arena: &TermArena, proc: &Proc) -> u64 {
    let mut h = StableHasher::new();
    0xA3u8.hash(&mut h);
    proc.name.hash(&mut h);
    proc.params.hash(&mut h);
    proc.body.len().hash(&mut h);
    for c in &proc.body {
        cmd(&mut h, arena, c);
    }
    h.finish()
}

fn expr(h: &mut StableHasher, arena: &TermArena, e: &Expr) {
    // The arena is the content-addressing scheme: equal expressions share an
    // id, and the id is stable for the lifetime of the session.
    arena.intern(e).hash(h);
}

fn exprs(h: &mut StableHasher, arena: &TermArena, es: &[Expr]) {
    es.len().hash(h);
    for e in es {
        expr(h, arena, e);
    }
}

fn asrt(h: &mut StableHasher, arena: &TermArena, a: &Asrt) {
    match a {
        Asrt::Emp => 0u8.hash(h),
        Asrt::Star(items) => {
            1u8.hash(h);
            items.len().hash(h);
            for item in items {
                asrt(h, arena, item);
            }
        }
        Asrt::Pure(e) => {
            2u8.hash(h);
            expr(h, arena, e);
        }
        Asrt::Core { name, ins, outs } => {
            3u8.hash(h);
            name.hash(h);
            exprs(h, arena, ins);
            exprs(h, arena, outs);
        }
        Asrt::Pred { name, args } => {
            4u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        Asrt::Guarded { name, lft, args } => {
            5u8.hash(h);
            name.hash(h);
            expr(h, arena, lft);
            exprs(h, arena, args);
        }
        Asrt::Observation(e) => {
            6u8.hash(h);
            expr(h, arena, e);
        }
    }
}

fn logic_cmd(h: &mut StableHasher, arena: &TermArena, c: &LogicCmd) {
    match c {
        LogicCmd::Fold(name, args) => {
            0u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        LogicCmd::Unfold(name, args) => {
            1u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        LogicCmd::UnfoldGuarded(name, args) => {
            2u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        LogicCmd::FoldGuarded(name, args) => {
            3u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        LogicCmd::ApplyLemma(name, args) => {
            4u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        LogicCmd::Assert(a) => {
            5u8.hash(h);
            asrt(h, arena, a);
        }
        LogicCmd::Assume(e) => {
            6u8.hash(h);
            expr(h, arena, e);
        }
        LogicCmd::Produce(a) => {
            7u8.hash(h);
            asrt(h, arena, a);
        }
        LogicCmd::Consume(a) => {
            8u8.hash(h);
            asrt(h, arena, a);
        }
        LogicCmd::Tactic(name, args) => {
            9u8.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
    }
}

fn cmd(h: &mut StableHasher, arena: &TermArena, c: &Cmd) {
    match c {
        Cmd::Assign(x, e) => {
            0u8.hash(h);
            x.hash(h);
            expr(h, arena, e);
        }
        Cmd::Action { lhs, name, args } => {
            1u8.hash(h);
            lhs.hash(h);
            name.hash(h);
            exprs(h, arena, args);
        }
        Cmd::Goto(t) => {
            2u8.hash(h);
            t.hash(h);
        }
        Cmd::GotoIf {
            guard,
            then_target,
            else_target,
        } => {
            3u8.hash(h);
            expr(h, arena, guard);
            then_target.hash(h);
            else_target.hash(h);
        }
        Cmd::Call { lhs, proc, args } => {
            4u8.hash(h);
            lhs.hash(h);
            proc.hash(h);
            exprs(h, arena, args);
        }
        Cmd::Logic(l) => {
            5u8.hash(h);
            logic_cmd(h, arena, l);
        }
        Cmd::Return(e) => {
            6u8.hash(h);
            expr(h, arena, e);
        }
        Cmd::Fail(msg) => {
            7u8.hash(h);
            msg.hash(h);
        }
        Cmd::Skip => 8u8.hash(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(delta: i128) -> Spec {
        Spec::new(
            "f",
            Asrt::pure(Expr::le(Expr::lvar("x"), Expr::Int(1000))),
            Asrt::pure(Expr::eq(
                Expr::lvar("ret"),
                Expr::add(Expr::lvar("x"), Expr::Int(delta)),
            )),
        )
    }

    #[test]
    fn identical_content_same_fingerprint() {
        let arena = TermArena::new();
        assert_eq!(
            fingerprint_spec(&arena, &spec(1)),
            fingerprint_spec(&arena, &spec(1))
        );
    }

    #[test]
    fn different_content_different_fingerprint() {
        let arena = TermArena::new();
        assert_ne!(
            fingerprint_spec(&arena, &spec(1)),
            fingerprint_spec(&arena, &spec(2))
        );
        assert_ne!(
            fingerprint_spec(&arena, &spec(1)),
            fingerprint_spec(&arena, &spec(1).trusted())
        );
    }

    #[test]
    fn absent_keys_are_stable_and_kind_distinct() {
        let arena = TermArena::new();
        let prog = Prog::new();
        let name = Symbol::new("ghost");
        let a = fingerprint_key(&prog, &arena, DepKind::Spec, name);
        let b = fingerprint_key(&prog, &arena, DepKind::Spec, name);
        assert_eq!(a, b);
        assert_ne!(a, fingerprint_key(&prog, &arena, DepKind::Proc, name));
    }

    #[test]
    fn adding_an_item_changes_its_key_fingerprint() {
        let arena = TermArena::new();
        let mut prog = Prog::new();
        let name = Symbol::new("f");
        let before = fingerprint_key(&prog, &arena, DepKind::Spec, name);
        prog.add_spec(spec(1));
        let after = fingerprint_key(&prog, &arena, DepKind::Spec, name);
        assert_ne!(before, after);
    }

    #[test]
    fn absent_sentinels_are_pinned_golden_values() {
        // Cross-process stability contract: the daemon's fingerprints are now
        // built on proof-cache's fixed-key StableHasher, so the pieces that do
        // not depend on session-local state (arena TermIds, Symbol numbering)
        // must reproduce bit-for-bit in every process. If this test fails, the
        // hasher or the traversal changed — bump CACHE_FORMAT_VERSION in
        // proof-cache and repin.
        let got: Vec<String> = DepKind::ALL
            .iter()
            .map(|k| format!("{:016x}", absent(*k)))
            .collect();
        assert_eq!(
            got,
            [
                "b630beacb61c4409",
                "7a10678331b880b7",
                "f60a15609fd13e0f",
                "273af5c9417193e7",
                "f05f3b261cfcc1b7",
            ]
        );
    }

    #[test]
    fn proc_fingerprint_tracks_body_changes() {
        let arena = TermArena::new();
        let a = Proc::new("f", &["x"], vec![Cmd::Return(Expr::pvar("x"))]);
        let b = Proc::new(
            "f",
            &["x"],
            vec![Cmd::Return(Expr::add(Expr::pvar("x"), Expr::Int(1)))],
        );
        assert_eq!(fingerprint_proc(&arena, &a), fingerprint_proc(&arena, &a));
        assert_ne!(fingerprint_proc(&arena, &a), fingerprint_proc(&arena, &b));
    }
}
