//! `gillian serve` — the request loop of the verification daemon.
//!
//! A [`ServerCore`] holds one loaded workload: the immutable program side
//! (interned terms, elaborated specifications, layouts) lives inside the
//! retained [`HybridSession`](driver::HybridSession) and is shared by every
//! request, while each request only allocates its own response. Verification
//! runs record, per target, exactly which specs/procs/preds/lemmas the proof
//! read (through the engine's `Prog` lookups) together with content
//! fingerprints of those items; `update_spec`/`update_fn` then dirty only
//! the reverse-dependency cone of the edited item, and `verify` answers
//! every clean target from the retained outcome cache.

use crate::db::{mode_label, parse_mode, workload, ProgramDb};
use crate::depgraph::{DepKey, DepTracker};
use crate::fingerprint::{fingerprint_key, fingerprint_pred, fingerprint_spec};
use crate::json::Value;
use crate::protocol::{parse_request, Request};
use creusot_lite::{elaborate, parse_term};
use driver::{CaseOutcome, SolverStats, Target, TargetKind};
use gillian_engine::gil::DepKind;
use gillian_lint::{LintDiagnostic, Severity};
use gillian_rust::verifier::{CaseReport, VerifyDiagnostic};
use gillian_solver::Symbol;
use proof_cache::{
    record_matches, stable_fingerprint_key, stable_target_fingerprint, CacheRecord, CacheStore,
    DepEntry, DirStore, RunCounters,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A failed request: the error message, plus the lint findings behind it
/// when the failure came from the static-analysis gate (an edit rejected by
/// `update_spec`/`update_fn`). Plain `String` errors convert losslessly, so
/// every pre-existing `?` site keeps working.
#[derive(Debug)]
pub struct DispatchError {
    pub message: String,
    pub lints: Vec<LintDiagnostic>,
}

impl From<String> for DispatchError {
    fn from(message: String) -> Self {
        DispatchError {
            message,
            lints: Vec::new(),
        }
    }
}

/// One loaded workload plus its dependency tracker and the disk-cache
/// counters accumulated over its lifetime (hits at hydration, misses and
/// writes at verification).
struct Loaded {
    db: ProgramDb,
    tracker: DepTracker,
    disk: RunCounters,
}

/// The daemon state shared across requests.
///
/// Workloads stay resident after a `load`: re-loading a `workload`/`mode`
/// pair that is already in memory switches back to the warm session — its
/// dependency tracker and outcome cache intact — instead of rebuilding, so a
/// client can cycle through several workloads and return to any of them
/// without losing incremental state.
pub struct ServerCore {
    sessions: BTreeMap<String, Loaded>,
    current: Option<String>,
    requests_served: u64,
    started: Instant,
    shutting_down: bool,
    /// Persistent proof-cache store, if the daemon was started with one
    /// (`--cache-dir` or `GILLIAN_CACHE_DIR`). Hydrates dependency trackers
    /// on `load`, absorbs verified proofs after each `verify`, and is
    /// flushed once more on `shutdown` — so a restarted daemon re-proves
    /// nothing that did not change.
    store: Option<Arc<dyn CacheStore>>,
}

impl Default for ServerCore {
    fn default() -> Self {
        ServerCore::new()
    }
}

impl ServerCore {
    pub fn new() -> ServerCore {
        ServerCore {
            sessions: BTreeMap::new(),
            current: None,
            requests_served: 0,
            started: Instant::now(),
            shutting_down: false,
            store: None,
        }
    }

    /// A core backed by a persistent proof-cache store.
    pub fn with_store(store: Arc<dyn CacheStore>) -> ServerCore {
        let mut core = ServerCore::new();
        core.store = Some(store);
        core
    }

    /// A core backed by an on-disk store rooted at `dir`.
    pub fn with_cache_dir(dir: impl Into<std::path::PathBuf>) -> ServerCore {
        ServerCore::with_store(Arc::new(DirStore::new(dir)))
    }

    /// Whether a `shutdown` request has been served.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Handles one request line and returns one response line.
    ///
    /// Request handling is panic-isolated: a panic anywhere inside dispatch
    /// (an engine bug, or an injected `daemon.request` fault in the chaos
    /// tests) is caught here and answered as a structured `ok:false` error
    /// on the request's own id — the daemon and its warm sessions survive.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.requests_served += 1;
        let envelope = parse_request(line);
        let result = match envelope.request {
            Err(e) => Err(DispatchError::from(e)),
            Ok(req) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if gillian_faults::hit("daemon.request").is_some() {
                        Err(DispatchError::from(
                            "injected fault: request handler failed".to_string(),
                        ))
                    } else {
                        self.dispatch(req)
                    }
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        let diag = VerifyDiagnostic::from_panic(payload.as_ref());
                        Err(DispatchError::from(format!(
                            "request handler panicked (daemon still serving): {}",
                            diag.message()
                        )))
                    }
                }
            }
        };
        let mut fields: Vec<(String, Value)> = Vec::new();
        match envelope.id {
            Some(id) => fields.push(("id".to_string(), Value::Int(id))),
            None => fields.push(("id".to_string(), Value::Null)),
        }
        match result {
            Ok(body) => {
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.extend(body);
            }
            Err(e) => {
                fields.push(("ok".to_string(), Value::Bool(false)));
                fields.push(("error".to_string(), Value::Str(e.message)));
                if !e.lints.is_empty() {
                    fields.push(("lints".to_string(), lint_array(&e.lints)));
                }
            }
        }
        Value::Object(fields).to_string()
    }

    fn dispatch(&mut self, req: Request) -> Result<Vec<(String, Value)>, DispatchError> {
        match req {
            Request::Load {
                workload,
                mode,
                workers,
                branch_parallelism,
            } => self.do_load(&workload, mode.as_deref(), workers, branch_parallelism),
            Request::Verify {
                targets,
                force,
                timeout_ms,
            } => self.do_verify(targets, force, timeout_ms),
            Request::UpdateSpec {
                func,
                requires,
                ensures,
            } => self.do_update_spec(&func, &requires, &ensures),
            Request::UpdateFn { func } => self.do_update_fn(&func),
            Request::Lint => self.do_lint(),
            Request::Stats => Ok(self.do_stats()),
            Request::Shutdown => {
                self.flush_all();
                self.shutting_down = true;
                Ok(vec![("bye".to_string(), Value::Bool(true))])
            }
        }
    }

    fn loaded(&mut self) -> Result<&mut Loaded, String> {
        let key = self
            .current
            .as_ref()
            .ok_or_else(|| "no workload loaded (send a `load` request first)".to_string())?;
        Ok(self
            .sessions
            .get_mut(key)
            .expect("current always names a resident session"))
    }

    fn do_load(
        &mut self,
        name: &str,
        mode: Option<&str>,
        workers: Option<usize>,
        branch_parallelism: Option<usize>,
    ) -> Result<Vec<(String, Value)>, DispatchError> {
        let mode = match mode {
            None => None,
            Some(s) => Some(
                parse_mode(s)
                    .ok_or_else(|| format!("unknown mode `{s}` (use \"ts\" or \"fc\")"))?,
            ),
        };
        let w = workload(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
        let mode = mode.unwrap_or(w.default_mode);
        let key = format!("{}:{}", w.name, mode_label(mode));

        // Re-loading a resident pair switches back to the warm session; the
        // workers/branch_parallelism of the original load stay in effect.
        let reused = self.sessions.contains_key(&key);
        let mut hydrated: Vec<String> = Vec::new();
        if !reused {
            let db = ProgramDb::load(name, Some(mode), workers, branch_parallelism)?;
            let mut tracker = DepTracker::new(db.session.targets().iter().map(|t| t.name.clone()));
            let mut disk = RunCounters::default();
            if let Some(store) = &self.store {
                hydrated = hydrate(store.as_ref(), &db, &mut tracker);
                disk.hits = hydrated.len() as u64;
            }
            self.sessions
                .insert(key.clone(), Loaded { db, tracker, disk });
        }
        self.current = Some(key.clone());

        let loaded = &self.sessions[&key];
        let targets: Vec<Value> = loaded
            .db
            .session
            .targets()
            .iter()
            .map(|t| Value::Str(t.name.clone()))
            .collect();
        Ok(vec![
            (
                "workload".to_string(),
                Value::Str(loaded.db.workload.name.to_string()),
            ),
            (
                "mode".to_string(),
                Value::Str(mode_label(loaded.db.mode).to_string()),
            ),
            ("reused".to_string(), Value::Bool(reused)),
            ("targets".to_string(), Value::Array(targets)),
            (
                "backend".to_string(),
                Value::Str(loaded.db.session.backend().to_string()),
            ),
            (
                "smt_available".to_string(),
                Value::Bool(loaded.db.session.verifier().engine.solver.smt_available()),
            ),
            ("hydrated".to_string(), string_array(&hydrated)),
            // Invariants are computed by the session builder; surface the
            // table fingerprint so clients can detect analysis drift.
            (
                "invariants_fingerprint".to_string(),
                Value::Str(format!(
                    "{:016x}",
                    loaded.db.session.invariants().fingerprint
                )),
            ),
            // Automatic linting on load: the findings of the build-time
            // analysis ride along (shipped workloads are clean, so this is
            // `[]` unless someone adds a defective workload).
            (
                "lints".to_string(),
                lint_array(
                    loaded
                        .db
                        .session
                        .lint_report()
                        .map(|r| r.diagnostics.as_slice())
                        .unwrap_or(&[]),
                ),
            ),
        ])
    }

    fn do_verify(
        &mut self,
        targets: Option<Vec<String>>,
        force: bool,
        timeout_ms: Option<u64>,
    ) -> Result<Vec<(String, Value)>, DispatchError> {
        let store = self.store.clone();
        let loaded = self.loaded()?;
        let all: Vec<Target> = loaded.db.session.targets().to_vec();
        let selected: Vec<Target> = match targets {
            None => all.clone(),
            Some(names) => {
                let mut out = Vec::with_capacity(names.len());
                for n in &names {
                    let t = all
                        .iter()
                        .find(|t| t.name == *n)
                        .cloned()
                        .ok_or_else(|| format!("unknown target `{n}`"))?;
                    out.push(t);
                }
                out
            }
        };

        // Per-request deadline: applied for this run only and restored
        // afterwards, so one client's budget never leaks into the session
        // configuration the next request sees.
        let saved_timeout = loaded.db.session.verifier().engine.opts.target_timeout;
        if let Some(ms) = timeout_ms {
            loaded.db.session.verifier_mut().engine.opts.target_timeout =
                Some(Duration::from_millis(ms));
        }

        let before = loaded.db.session.verifier().solver_stats();
        let disk_before = loaded.disk;
        let wall = Instant::now();
        let mut reverified: Vec<String> = Vec::new();
        let mut cached: Vec<String> = Vec::new();
        let mut cases: Vec<(CaseOutcome, bool)> = Vec::new();

        for t in &selected {
            if force || loaded.tracker.is_dirty(&t.name) {
                let (outcome, reads) = run_target(&mut loaded.db, &mut loaded.tracker, t);
                if let Some(store) = &store {
                    loaded.disk.misses += 1;
                    // Only verified outcomes persist: failures are always
                    // re-proved, so their diagnostics are always fresh.
                    if outcome.verified() {
                        store.insert(&stable_record(&loaded.db, t, &outcome, reads));
                        loaded.disk.writes += 1;
                    }
                }
                reverified.push(t.name.clone());
                cases.push((outcome, false));
            } else {
                let outcome = loaded
                    .tracker
                    .cached(&t.name)
                    .expect("clean target has a cached outcome")
                    .clone();
                cached.push(t.name.clone());
                cases.push((outcome, true));
            }
        }

        if timeout_ms.is_some() {
            loaded.db.session.verifier_mut().engine.opts.target_timeout = saved_timeout;
        }

        let wall_seconds = wall.elapsed().as_secs_f64();
        let mut delta = loaded.db.session.verifier().solver_stats().since(before);
        delta.disk_cache_hits = loaded.disk.hits - disk_before.hits;
        delta.disk_cache_misses = loaded.disk.misses - disk_before.misses;
        delta.disk_cache_writes = loaded.disk.writes - disk_before.writes;
        if let Some(store) = &store {
            store.note_run(loaded.disk);
        }
        let all_verified = cases.iter().all(|(o, _)| o.verified());
        let case_values: Vec<Value> = cases
            .iter()
            .map(|(o, was_cached)| case_value(o, *was_cached))
            .collect();

        Ok(vec![
            ("all_verified".to_string(), Value::Bool(all_verified)),
            ("cases".to_string(), Value::Array(case_values)),
            ("reverified".to_string(), string_array(&reverified)),
            ("cached".to_string(), string_array(&cached)),
            ("wall_seconds".to_string(), Value::Float(wall_seconds)),
            ("solver_delta".to_string(), stats_value(delta)),
            (
                "backend".to_string(),
                Value::Str(loaded.db.session.backend().to_string()),
            ),
        ])
    }

    fn do_update_spec(
        &mut self,
        func: &str,
        requires: &[String],
        ensures: &[String],
    ) -> Result<Vec<(String, Value)>, DispatchError> {
        let loaded = self.loaded()?;

        let parse_clauses = |clauses: &[String], what: &str| {
            clauses
                .iter()
                .map(|src| {
                    parse_term(src)
                        .map(|t| elaborate(&t))
                        .map_err(|e| format!("{what} `{src}`: {} at byte {}", e.message, e.offset))
                })
                .collect::<Result<Vec<_>, String>>()
        };
        let req_exprs = parse_clauses(requires, "requires")?;
        let ens_exprs = parse_clauses(ensures, "ensures")?;

        let fndef = loaded
            .db
            .session
            .verifier()
            .types
            .program
            .function(func)
            .cloned()
            .ok_or_else(|| format!("unknown function `{func}`"))?;

        // Re-elaborate against the retained side context: own-predicates are
        // created on demand there, so they may need syncing into the engine.
        let spec = loaded.db.side_ctx.fn_spec(&fndef, req_exprs, ens_exprs);

        // Lint the candidate spec on a scratch copy of the engine program
        // *before* any retained state changes: a rejected edit must leave
        // the warm session — engine program, spec tables, dependency cone —
        // exactly as it was. Lint errors (unknown predicate, unsatisfiable
        // precondition, …) reject the edit with the findings on the wire;
        // warnings ride along on the success response.
        let lint_findings = {
            let mut candidate = loaded.db.session.verifier().engine.prog.clone();
            for (name, pred) in &loaded.db.side_ctx.prog.preds {
                if !candidate.preds.contains_key(name) {
                    candidate.add_pred(pred.clone());
                }
            }
            candidate.add_spec(spec.clone());
            gillian_lint::lint_spec(&candidate, func, &loaded.db.session.lint_options())
        };
        if lint_findings.iter().any(|d| d.severity == Severity::Error) {
            let first = lint_findings
                .iter()
                .find(|d| d.severity == Severity::Error)
                .expect("an error exists");
            return Err(DispatchError {
                message: format!("update_spec rejected by lint: {first}"),
                lints: lint_findings,
            });
        }

        loaded.db.side_ctx.add_spec(spec.clone());

        let arena = loaded.db.session.verifier().engine.solver.arena().clone();
        let mut dirtied: BTreeSet<String> = BTreeSet::new();
        let mut changed = false;

        let pred_names: Vec<Symbol> = loaded.db.side_ctx.prog.preds.keys().copied().collect();
        for name in pred_names {
            let new_fp = fingerprint_pred(&arena, &loaded.db.side_ctx.prog.preds[&name]);
            let old_fp = fingerprint_key(
                &loaded.db.session.verifier().engine.prog,
                &arena,
                DepKind::Pred,
                name,
            );
            if old_fp != new_fp {
                let pred = loaded.db.side_ctx.prog.preds[&name].clone();
                loaded.db.session.verifier_mut().engine.prog.add_pred(pred);
                changed = true;
                dirtied.extend(
                    loaded
                        .tracker
                        .dirty_key(&(DepKind::Pred, name.to_string()), new_fp),
                );
            }
        }

        let new_fp = fingerprint_spec(&arena, &spec);
        let old_fp = fingerprint_key(
            &loaded.db.session.verifier().engine.prog,
            &arena,
            DepKind::Spec,
            Symbol::new(func),
        );
        if old_fp != new_fp {
            loaded.db.session.verifier_mut().engine.prog.add_spec(spec);
            changed = true;
            dirtied.extend(
                loaded
                    .tracker
                    .dirty_key(&(DepKind::Spec, func.to_string()), new_fp),
            );
        }

        if changed {
            // Keep the session's carried lint report in sync with the
            // mutated program, so `lint` requests and future reports never
            // describe a stale spec table.
            loaded.db.session.relint();
        }

        let dirtied: Vec<String> = dirtied.into_iter().collect();
        Ok(vec![
            ("fn".to_string(), Value::Str(func.to_string())),
            ("changed".to_string(), Value::Bool(changed)),
            ("dirtied".to_string(), string_array(&dirtied)),
            ("lints".to_string(), lint_array(&lint_findings)),
        ])
    }

    fn do_update_fn(&mut self, func: &str) -> Result<Vec<(String, Value)>, DispatchError> {
        let loaded = self.loaded()?;
        let sym = Symbol::new(func);
        if !loaded
            .db
            .session
            .verifier()
            .engine
            .prog
            .procs
            .contains_key(&sym)
        {
            return Err(format!("unknown function `{func}`").into());
        }
        // Automatic linting on the touched procedure: errors reject the
        // invalidation (a malformed body can only waste re-proof work),
        // warnings are attached to the response.
        let lint_findings = gillian_lint::lint_proc(
            &loaded.db.session.verifier().engine.prog,
            func,
            &loaded.db.session.lint_options(),
        );
        if lint_findings.iter().any(|d| d.severity == Severity::Error) {
            let first = lint_findings
                .iter()
                .find(|d| d.severity == Severity::Error)
                .expect("an error exists");
            return Err(DispatchError {
                message: format!("update_fn rejected by lint: {first}"),
                lints: lint_findings,
            });
        }
        // The body itself cannot be edited over the wire (programs are
        // compiled in), so an `update_fn` conservatively invalidates every
        // proof that read the procedure: its own, plus any caller that
        // inlined it for lack of a spec.
        let key: DepKey = (DepKind::Proc, func.to_string());
        let dirtied = loaded.tracker.dirty_key_force(&key);
        // The abstract-interpretation invariants follow the same per-proc
        // granularity: recompute just the touched procedure and refresh the
        // engine's static oracle.
        loaded.db.session.refresh_invariants_for(func);
        Ok(vec![
            ("fn".to_string(), Value::Str(func.to_string())),
            ("dirtied".to_string(), string_array(&dirtied)),
            ("lints".to_string(), lint_array(&lint_findings)),
            (
                "invariants_fingerprint".to_string(),
                Value::Str(format!(
                    "{:016x}",
                    loaded.db.session.invariants().fingerprint
                )),
            ),
        ])
    }

    /// `lint` — runs the full static analysis over the loaded program and
    /// returns every finding, without touching the dependency tracker or
    /// starting any proof search.
    fn do_lint(&mut self) -> Result<Vec<(String, Value)>, DispatchError> {
        let loaded = self.loaded()?;
        let report = gillian_lint::lint_prog(
            &loaded.db.session.verifier().engine.prog,
            &loaded.db.session.lint_options(),
        );
        Ok(vec![
            ("lints".to_string(), lint_array(&report.diagnostics)),
            (
                "errors".to_string(),
                Value::Int(report.errors().count() as i64),
            ),
            (
                "warnings".to_string(),
                Value::Int(report.warnings().count() as i64),
            ),
            ("clean".to_string(), Value::Bool(report.is_clean())),
            (
                "vacuity_seconds".to_string(),
                Value::Float(report.vacuity_time.as_secs_f64()),
            ),
        ])
    }

    fn do_stats(&mut self) -> Vec<(String, Value)> {
        let uptime = self.started.elapsed().as_secs_f64();
        let mut body = vec![
            (
                "requests_served".to_string(),
                Value::Int(self.requests_served as i64),
            ),
            ("uptime_seconds".to_string(), Value::Float(uptime)),
            (
                "loaded_sessions".to_string(),
                Value::Int(self.sessions.len() as i64),
            ),
        ];
        let current = self.current.as_ref().and_then(|key| self.sessions.get(key));
        match current {
            None => body.push(("workload".to_string(), Value::Null)),
            Some(loaded) => {
                let verifier = loaded.db.session.verifier();
                body.push((
                    "workload".to_string(),
                    Value::Str(loaded.db.workload.name.to_string()),
                ));
                body.push((
                    "mode".to_string(),
                    Value::Str(mode_label(loaded.db.mode).to_string()),
                ));
                body.push((
                    "arena_terms".to_string(),
                    Value::Int(verifier.engine.solver.arena().len() as i64),
                ));
                body.push((
                    "dirty_targets".to_string(),
                    Value::Int(loaded.tracker.dirty_count() as i64),
                ));
                let mut solver = verifier.solver_stats();
                solver.disk_cache_hits = loaded.disk.hits;
                solver.disk_cache_misses = loaded.disk.misses;
                solver.disk_cache_writes = loaded.disk.writes;
                body.push(("solver".to_string(), stats_value(solver)));
                body.push((
                    "backend".to_string(),
                    Value::Str(verifier.backend_kind().to_string()),
                ));
                body.push((
                    "smt_available".to_string(),
                    Value::Bool(verifier.engine.solver.smt_available()),
                ));
            }
        }
        body
    }

    /// Writes a stable record for every clean, verified target of every
    /// resident session to the disk store. Eager write-back after each
    /// `verify` already covers freshly proved targets; this shutdown sweep
    /// additionally re-writes hydrated ones, refreshing their mtimes for
    /// `cache gc`'s least-recently-used ordering. Public so the binary's
    /// SIGTERM/SIGINT handler can flush exactly like a `shutdown` request.
    pub fn flush_all(&mut self) {
        let Some(store) = &self.store else { return };
        for loaded in self.sessions.values() {
            for t in loaded.db.session.targets() {
                if loaded.tracker.is_dirty(&t.name) {
                    continue;
                }
                let Some(outcome) = loaded.tracker.cached(&t.name) else {
                    continue;
                };
                if !outcome.verified() {
                    continue;
                }
                let Some(deps) = loaded.tracker.deps_of(&t.name) else {
                    continue;
                };
                let reads: Vec<(DepKind, Symbol)> = deps
                    .iter()
                    .map(|((kind, name), _)| (*kind, Symbol::new(name)))
                    .collect();
                store.insert(&stable_record(&loaded.db, t, outcome, reads));
            }
        }
    }
}

/// Runs one target with dependency recording and records the result.
/// Returns the outcome plus the raw read-set, so a caller holding a disk
/// store can persist a stable record without re-running anything.
///
/// The proof itself runs under `catch_unwind`: a panicking target (an
/// engine bug, or an injected fault in the chaos tests) becomes a
/// structured unverified outcome of category `panic`, and — crucially for
/// the resident daemon — the dependency-recording window is closed either
/// way, so the session's warm state stays consistent for the next request.
///
/// *Transient* outcomes (a panic, or a timeout under a wall-clock deadline)
/// are returned but **not** recorded in the tracker: they describe this
/// run's environment, not the program, so the target stays dirty and is
/// re-proved on the next request instead of replaying a stale failure.
fn run_target(
    db: &mut ProgramDb,
    tracker: &mut DepTracker,
    target: &Target,
) -> (CaseOutcome, Vec<(DepKind, Symbol)>) {
    let verifier = db.session.verifier();
    let deadline_active = verifier.engine.opts.target_timeout.is_some();
    verifier.engine.prog.begin_dep_recording();
    let start = Instant::now();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match target.kind {
        TargetKind::Function => db.session.verify_fn(&target.name),
        TargetKind::Lemma => db.session.verify_lemma(&target.name),
    }));
    let report = match attempt {
        Ok(report) => report,
        Err(payload) => CaseReport {
            name: target.name.clone(),
            verified: false,
            elapsed: start.elapsed(),
            diagnostic: Some(VerifyDiagnostic::from_panic(payload.as_ref())),
        },
    };
    let raw = verifier.engine.prog.end_dep_recording();
    let arena = verifier.engine.solver.arena();
    let reads: Vec<(DepKey, u64)> = raw
        .iter()
        .map(|&(kind, name)| {
            let fp = fingerprint_key(&verifier.engine.prog, arena, kind, name);
            ((kind, name.to_string()), fp)
        })
        .collect();
    let outcome = CaseOutcome {
        kind: target.kind,
        report,
    };
    let transient = match &outcome.report.diagnostic {
        Some(VerifyDiagnostic::Panic { .. }) => true,
        Some(VerifyDiagnostic::Timeout { .. }) => deadline_active,
        _ => false,
    };
    if !transient {
        tracker.record(&target.name, reads, outcome.clone());
    }
    (outcome, raw)
}

/// Builds the persistent, cross-process record of a freshly verified
/// target: every fingerprint is recomputed with the *stable* (name-based,
/// arena-independent) scheme — the session fingerprints in the tracker key
/// off interned `TermId`s and mean nothing outside this process.
fn stable_record(
    db: &ProgramDb,
    target: &Target,
    outcome: &CaseOutcome,
    reads: Vec<(DepKind, Symbol)>,
) -> CacheRecord {
    let prog = &db.session.verifier().engine.prog;
    let mut deps: Vec<DepEntry> = reads
        .into_iter()
        .map(|(kind, name)| DepEntry {
            kind: kind.label().to_string(),
            name: name.to_string(),
            fingerprint: stable_fingerprint_key(prog, kind, name),
        })
        .collect();
    deps.sort_by(|a, b| (&a.kind, &a.name).cmp(&(&b.kind, &b.name)));
    CacheRecord {
        namespace: db.session.cache_namespace(),
        kind_label: target.kind.label().to_string(),
        name: target.name.clone(),
        target_fp: stable_target_fingerprint(prog, &target.name),
        deps,
        elapsed_nanos: outcome.report.elapsed.as_nanos() as u64,
    }
}

/// Seeds a fresh dependency tracker from the disk store: every target with
/// a record whose target *and* dependency fingerprints all match the loaded
/// program is marked clean with a synthetic verified outcome, and its
/// read-set is re-fingerprinted with the session (arena-based) scheme so
/// later `update_spec`/`update_fn` requests dirty the cone exactly as if
/// this process had proved it. Returns the hydrated target names.
fn hydrate(store: &dyn CacheStore, db: &ProgramDb, tracker: &mut DepTracker) -> Vec<String> {
    let namespace = db.session.cache_namespace();
    let verifier = db.session.verifier();
    let prog = &verifier.engine.prog;
    let arena = verifier.engine.solver.arena();
    let mut hydrated = Vec::new();
    for t in db.session.targets() {
        let tkey = proof_cache::target_key(namespace, t.kind.label(), &t.name);
        let hit = store.lookup(tkey).into_iter().find(|rec| {
            rec.namespace == namespace
                && rec.kind_label == t.kind.label()
                && rec.name == t.name
                && record_matches(rec, prog)
        });
        let Some(rec) = hit else { continue };
        let reads: Vec<(DepKey, u64)> = rec
            .deps
            .iter()
            .filter_map(|d| {
                let kind = DepKind::from_label(&d.kind)?;
                let name = Symbol::new(&d.name);
                let fp = fingerprint_key(prog, arena, kind, name);
                Some(((kind, d.name.clone()), fp))
            })
            .collect();
        let outcome = CaseOutcome {
            kind: t.kind,
            report: CaseReport {
                name: t.name.clone(),
                verified: true,
                // The cold proving time from the record, so reports keep a
                // meaningful duration column.
                elapsed: Duration::from_nanos(rec.elapsed_nanos),
                diagnostic: None,
            },
        };
        tracker.record(&t.name, reads, outcome);
        hydrated.push(t.name.clone());
    }
    hydrated
}

fn case_value(outcome: &CaseOutcome, was_cached: bool) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(outcome.name().to_string())),
        (
            "kind".to_string(),
            Value::Str(outcome.kind.label().to_string()),
        ),
        ("verified".to_string(), Value::Bool(outcome.verified())),
        ("cached".to_string(), Value::Bool(was_cached)),
        (
            "seconds".to_string(),
            Value::Float(outcome.report.elapsed.as_secs_f64()),
        ),
    ];
    if let Some(d) = outcome.diagnostic() {
        fields.push((
            "diagnostic".to_string(),
            Value::Object(vec![
                ("category".to_string(), Value::Str(d.category().to_string())),
                ("message".to_string(), Value::Str(d.message().to_string())),
                ("fingerprint".to_string(), Value::Str(d.fingerprint())),
            ]),
        ));
    }
    Value::Object(fields)
}

fn stats_value(s: SolverStats) -> Value {
    Value::Object(vec![
        (
            "unsat_queries".to_string(),
            Value::Int(s.unsat_queries as i64),
        ),
        (
            "entailment_queries".to_string(),
            Value::Int(s.entailment_queries as i64),
        ),
        (
            "cases_explored".to_string(),
            Value::Int(s.cases_explored as i64),
        ),
        ("cache_hits".to_string(), Value::Int(s.cache_hits as i64)),
        (
            "incremental_hits".to_string(),
            Value::Int(s.incremental_hits as i64),
        ),
        ("smt_queries".to_string(), Value::Int(s.smt_queries as i64)),
        ("smt_unsat".to_string(), Value::Int(s.smt_unsat as i64)),
        (
            "smt_failures".to_string(),
            Value::Int(s.smt_failures as i64),
        ),
        (
            "smt_reenabled".to_string(),
            Value::Int(s.smt_reenabled as i64),
        ),
        (
            "kernel_nanos".to_string(),
            Value::Int(s.kernel_nanos as i64),
        ),
        (
            "disk_cache_hits".to_string(),
            Value::Int(s.disk_cache_hits as i64),
        ),
        (
            "disk_cache_misses".to_string(),
            Value::Int(s.disk_cache_misses as i64),
        ),
        (
            "disk_cache_writes".to_string(),
            Value::Int(s.disk_cache_writes as i64),
        ),
        (
            "branches_pruned_static".to_string(),
            Value::Int(s.branches_pruned_static as i64),
        ),
        (
            "absint_facts_seeded".to_string(),
            Value::Int(s.absint_facts_seeded as i64),
        ),
    ])
}

/// One lint diagnostic as a wire object: stable code, severity, span text
/// and message.
fn lint_value(d: &LintDiagnostic) -> Value {
    Value::Object(vec![
        ("code".to_string(), Value::Str(d.code.to_string())),
        (
            "severity".to_string(),
            Value::Str(d.severity.label().to_string()),
        ),
        ("span".to_string(), Value::Str(d.span.to_string())),
        ("message".to_string(), Value::Str(d.message.clone())),
    ])
}

fn lint_array(diags: &[LintDiagnostic]) -> Value {
    Value::Array(diags.iter().map(lint_value).collect())
}

fn string_array(names: &[String]) -> Value {
    Value::Array(names.iter().map(|n| Value::Str(n.clone())).collect())
}

/// Serves newline-delimited JSON over stdin/stdout until `shutdown` (or
/// EOF). One request per line, one response per line.
pub fn serve_stdio() -> std::io::Result<()> {
    serve_stdio_with(ServerCore::new())
}

/// [`serve_stdio`] over a caller-configured core (e.g. one holding a
/// persistent proof-cache store).
pub fn serve_stdio_with(core: ServerCore) -> std::io::Result<()> {
    serve_stdio_shared(&Arc::new(Mutex::new(core)))
}

/// [`serve_stdio`] over a *shared* core: the binary hands the same handle
/// to its SIGTERM/SIGINT watcher, which flushes the proof cache and exits
/// while this loop is blocked on `read_line`.
pub fn serve_stdio_shared(core: &Arc<Mutex<ServerCore>>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, done) = {
            let mut core = core.lock().unwrap();
            let resp = core.handle_line(&line);
            (resp, core.is_shutting_down())
        };
        {
            let mut out = stdout.lock();
            writeln!(out, "{resp}")?;
            out.flush()?;
        }
        if done {
            break;
        }
    }
    Ok(())
}

/// Serves the daemon protocol on a Unix domain socket. Connections share
/// one [`ServerCore`] (one loaded workload, one dependency tracker);
/// requests are serialised through a mutex, so interleaved clients see a
/// consistent warm state. A `shutdown` request stops the accept loop.
///
/// Lives in the library (not the binary) so the integration tests can
/// drive a real socket — in particular the client-disconnect tests. Each
/// connection gets its own thread; finished threads (a client that
/// disconnected, possibly mid-request) are reaped on every accept-loop
/// iteration rather than accumulating until shutdown.
pub fn serve_unix(path: &str, core: &Arc<Mutex<ServerCore>>) -> std::io::Result<()> {
    use std::io::BufReader;
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::{AtomicBool, Ordering};

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let done = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    while !done.load(Ordering::SeqCst) {
        // Reap connection threads whose client went away — a disconnect
        // (even mid-request) must release the thread, not park it until
        // shutdown.
        handles.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(core);
                let done = Arc::clone(&done);
                handles.push(std::thread::spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let mut writer = stream;
                    for line in reader.lines() {
                        let line = match line {
                            Ok(l) => l,
                            Err(_) => break,
                        };
                        if line.trim().is_empty() {
                            continue;
                        }
                        let resp = {
                            let mut core = core.lock().unwrap();
                            let resp = core.handle_line(&line);
                            if core.is_shutting_down() {
                                done.store(true, Ordering::SeqCst);
                            }
                            resp
                        };
                        if writeln!(writer, "{resp}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }

    for h in handles {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ok(resp: &str) -> Value {
        let v = parse(resp).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
        v
    }

    fn names(v: &Value, field: &str) -> Vec<String> {
        v.get(field)
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|x| x.as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn load_verify_and_warm_cache() {
        let mut core = ServerCore::new();
        let v = ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        assert_eq!(names(&v, "targets"), vec!["base", "inc", "inc2"]);

        let v = ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "reverified"), vec!["base", "inc", "inc2"]);
        assert!(names(&v, "cached").is_empty());

        // Warm: nothing dirty, everything cached.
        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert!(names(&v, "reverified").is_empty());
        assert_eq!(names(&v, "cached"), vec!["base", "inc", "inc2"]);

        // Re-loading the same workload/mode pair switches back to the warm
        // session instead of rebuilding: the cache survives.
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"load","workload":"chain"}"#));
        assert_eq!(v.get("reused").and_then(Value::as_bool), Some(true));
        let v = ok(&core.handle_line(r#"{"id":5,"cmd":"verify"}"#));
        assert!(names(&v, "reverified").is_empty());
        assert_eq!(names(&v, "cached"), vec!["base", "inc", "inc2"]);
    }

    #[test]
    fn update_spec_dirties_exactly_the_cone() {
        let mut core = ServerCore::new();
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));

        // Tighten inc's precondition: inc itself and its spec-caller inc2
        // must re-run; base must not.
        let v = ok(&core.handle_line(
            r#"{"id":3,"cmd":"update_spec","fn":"inc","requires":["x@ < 2000"],"ensures":["result@ == x@ + 1"]}"#,
        ));
        assert_eq!(v.get("changed").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "dirtied"), vec!["inc", "inc2"]);

        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "reverified"), vec!["inc", "inc2"]);
        assert_eq!(names(&v, "cached"), vec!["base"]);

        // Re-sending the same spec is a no-op.
        let v = ok(&core.handle_line(
            r#"{"id":5,"cmd":"update_spec","fn":"inc","requires":["x@ < 2000"],"ensures":["result@ == x@ + 1"]}"#,
        ));
        assert_eq!(v.get("changed").and_then(Value::as_bool), Some(false));
        assert!(names(&v, "dirtied").is_empty());
    }

    #[test]
    fn update_spec_can_break_and_fix_a_proof() {
        let mut core = ServerCore::new();
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));

        // A wrong postcondition for inc: inc's own proof fails, and inc2's
        // proof (built on the broken contract) fails too.
        let v = ok(&core.handle_line(
            r#"{"id":3,"cmd":"update_spec","fn":"inc","requires":["x@ < 1000"],"ensures":["result@ == x@ + 2"]}"#,
        ));
        assert_eq!(names(&v, "dirtied"), vec!["inc", "inc2"]);
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(false));

        // Restore the correct contract; only the cone re-runs and passes.
        ok(&core.handle_line(
            r#"{"id":5,"cmd":"update_spec","fn":"inc","requires":["x@ < 1000"],"ensures":["result@ == x@ + 1"]}"#,
        ));
        let v = ok(&core.handle_line(r#"{"id":6,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "reverified"), vec!["inc", "inc2"]);
    }

    #[test]
    fn update_fn_dirties_only_the_function() {
        let mut core = ServerCore::new();
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));

        // inc2 is verified against inc's SPEC, not its body, so touching
        // inc's body re-runs only inc.
        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"update_fn","fn":"inc"}"#));
        assert_eq!(names(&v, "dirtied"), vec!["inc"]);
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"verify"}"#));
        assert_eq!(names(&v, "reverified"), vec!["inc"]);
        assert_eq!(names(&v, "cached"), vec!["base", "inc2"]);
    }

    #[test]
    fn errors_and_stats_and_shutdown() {
        let mut core = ServerCore::new();
        let v = parse(&core.handle_line(r#"{"id":1,"cmd":"verify"}"#)).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("no workload loaded"));

        let v = ok(&core.handle_line(r#"{"id":2,"cmd":"stats"}"#));
        assert_eq!(v.get("requests_served").and_then(Value::as_i64), Some(2));
        assert!(matches!(v.get("workload"), Some(Value::Null)));

        assert!(!core.is_shutting_down());
        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"shutdown"}"#));
        assert_eq!(v.get("bye").and_then(Value::as_bool), Some(true));
        assert!(core.is_shutting_down());
    }

    #[test]
    fn update_spec_with_unsat_pre_is_rejected_and_dirties_nothing() {
        let mut core = ServerCore::new();
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));

        // `x@ < 5` and `5 < x@` cannot both hold: the vacuity pass refutes
        // the precondition and the edit is rejected with the finding on the
        // wire, before any retained state is touched.
        let resp = core.handle_line(
            r#"{"id":3,"cmd":"update_spec","fn":"inc","requires":["x@ < 5","5 < x@"],"ensures":["result@ == x@ + 1"]}"#,
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{resp}");
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("GL041"));
        let lints = v.get("lints").and_then(Value::as_array).unwrap();
        assert!(lints
            .iter()
            .any(|l| l.get("code").and_then(Value::as_str) == Some("GL041")));

        // The rejected edit did NOT dirty the dependency cone: the next
        // verify answers everything from the warm outcome cache.
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert!(names(&v, "reverified").is_empty(), "{resp}");
        assert_eq!(names(&v, "cached"), vec!["base", "inc", "inc2"]);
    }

    #[test]
    fn warn_only_update_spec_passes_with_lints_on_the_wire() {
        let mut core = ServerCore::new();
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));

        // `y@` names no parameter: `#y_repr` appears exactly once in the
        // precondition — an orphaned logical variable, a warning (GL028),
        // not an error. The edit goes through, findings attached. Editing
        // `inc2` (the top of the call chain — no caller consumes its spec)
        // keeps every proof green: its own proof merely *assumes* the
        // orphaned pure.
        let v = ok(&core.handle_line(
            r#"{"id":3,"cmd":"update_spec","fn":"inc2","requires":["x@ < 900","y@ < 5"],"ensures":["result@ == x@ + 2"]}"#,
        ));
        assert_eq!(v.get("changed").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "dirtied"), vec!["inc2"]);
        let lints = v.get("lints").and_then(Value::as_array).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| l.get("code").and_then(Value::as_str) == Some("GL028")),
            "{lints:?}"
        );

        // And the weakened-but-satisfiable contract still verifies.
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn lint_request_reports_a_clean_loaded_workload() {
        let mut core = ServerCore::new();
        let v = parse(&core.handle_line(r#"{"id":1,"cmd":"lint"}"#)).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));

        ok(&core.handle_line(
            r#"{"id":2,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"lint"}"#));
        assert_eq!(v.get("clean").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("errors").and_then(Value::as_i64), Some(0));
        assert_eq!(v.get("warnings").and_then(Value::as_i64), Some(0));
        assert!(v.get("lints").and_then(Value::as_array).unwrap().is_empty());

        // `load` responses carry the build-time findings too (empty here).
        let v = ok(&core.handle_line(r#"{"id":4,"cmd":"load","workload":"chain"}"#));
        assert!(v.get("lints").and_then(Value::as_array).unwrap().is_empty());
    }

    fn delta_i64(v: &Value, field: &str) -> i64 {
        v.get("solver_delta")
            .and_then(|d| d.get(field))
            .and_then(Value::as_i64)
            .unwrap()
    }

    #[test]
    fn daemon_restart_hydrates_from_the_store() {
        let store: Arc<dyn CacheStore> = Arc::new(proof_cache::MemStore::new());

        // First daemon lifetime: everything is proved cold and written back.
        let mut core = ServerCore::with_store(Arc::clone(&store));
        let v = ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        assert!(names(&v, "hydrated").is_empty());
        let v = ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));
        assert_eq!(names(&v, "reverified"), vec!["base", "inc", "inc2"]);
        assert_eq!(delta_i64(&v, "disk_cache_misses"), 3);
        assert_eq!(delta_i64(&v, "disk_cache_writes"), 3);
        ok(&core.handle_line(r#"{"id":3,"cmd":"shutdown"}"#));

        // Second daemon lifetime over the same store: the load hydrates the
        // tracker, and the first verify answers everything warm — the
        // restart-resilience contract of the persistent cache.
        let mut core = ServerCore::with_store(Arc::clone(&store));
        let v = ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        assert_eq!(names(&v, "hydrated"), vec!["base", "inc", "inc2"]);
        let v = ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert!(names(&v, "reverified").is_empty());
        assert_eq!(names(&v, "cached"), vec!["base", "inc", "inc2"]);
        assert_eq!(delta_i64(&v, "disk_cache_misses"), 0);

        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"stats"}"#));
        let solver = v.get("solver").unwrap();
        assert_eq!(
            solver.get("disk_cache_hits").and_then(Value::as_i64),
            Some(3)
        );
    }

    #[test]
    fn hydrated_sessions_keep_exact_cone_invalidation() {
        let store: Arc<dyn CacheStore> = Arc::new(proof_cache::MemStore::new());
        let mut core = ServerCore::with_store(Arc::clone(&store));
        ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        ok(&core.handle_line(r#"{"id":2,"cmd":"verify"}"#));
        ok(&core.handle_line(r#"{"id":3,"cmd":"shutdown"}"#));

        // Restart, hydrate, then edit inc's spec: the hydrated read-sets
        // must dirty exactly the reverse-dependency cone {inc, inc2}.
        let mut core = ServerCore::with_store(Arc::clone(&store));
        let v = ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        assert_eq!(names(&v, "hydrated"), vec!["base", "inc", "inc2"]);
        let v = ok(&core.handle_line(
            r#"{"id":2,"cmd":"update_spec","fn":"inc","requires":["x@ < 2000"],"ensures":["result@ == x@ + 1"]}"#,
        ));
        assert_eq!(names(&v, "dirtied"), vec!["inc", "inc2"]);
        let v = ok(&core.handle_line(r#"{"id":3,"cmd":"verify"}"#));
        assert_eq!(v.get("all_verified").and_then(Value::as_bool), Some(true));
        assert_eq!(names(&v, "reverified"), vec!["inc", "inc2"]);
        assert_eq!(names(&v, "cached"), vec!["base"]);
        // The re-proofs under the edited spec were written back as *new*
        // records (different read-set fingerprints), so both generations
        // coexist in the store.
        assert_eq!(delta_i64(&v, "disk_cache_writes"), 2);

        // Third lifetime: the program is compiled back in its original
        // form, and the first-generation records still match it — editing a
        // spec and editing it back never loses warm state.
        ok(&core.handle_line(r#"{"id":4,"cmd":"shutdown"}"#));
        let mut core = ServerCore::with_store(Arc::clone(&store));
        let v = ok(&core.handle_line(
            r#"{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}"#,
        ));
        assert_eq!(names(&v, "hydrated"), vec!["base", "inc", "inc2"]);
    }
}
