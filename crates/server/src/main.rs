//! The `gillian` binary.
//!
//! ```text
//! gillian serve                 # newline-delimited JSON over stdin/stdout
//! gillian serve --socket PATH   # same protocol over a Unix domain socket
//! ```

use gillian_server::{serve_stdio, ServerCore};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const USAGE: &str = "\
gillian — the hybrid verification daemon

USAGE:
    gillian serve [--socket PATH]

COMMANDS:
    serve    Run the verification daemon. Requests are newline-delimited
             JSON objects ({\"cmd\":\"load\"|\"verify\"|\"update_spec\"|
             \"update_fn\"|\"stats\"|\"shutdown\", ...}); one response line
             per request. Default transport is stdin/stdout; --socket PATH
             listens on a Unix domain socket instead.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let mut socket: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--socket" => match rest.next() {
                        Some(path) => socket = Some(path.clone()),
                        None => die("--socket requires a path"),
                    },
                    other => die(&format!("unknown argument `{other}`")),
                }
            }
            let result = match socket {
                None => serve_stdio(),
                Some(path) => serve_unix(&path),
            };
            if let Err(e) = result {
                eprintln!("gillian serve: {e}");
                std::process::exit(1);
            }
        }
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
        }
        Some(other) => die(&format!("unknown command `{other}`")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("gillian: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Serves the daemon protocol on a Unix domain socket. Connections share
/// one [`ServerCore`] (one loaded workload, one dependency tracker);
/// requests are serialised through a mutex, so interleaved clients see a
/// consistent warm state. A `shutdown` request stops the accept loop.
fn serve_unix(path: &str) -> std::io::Result<()> {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let core = Arc::new(Mutex::new(ServerCore::new()));
    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    while !done.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(&core);
                let done = Arc::clone(&done);
                handles.push(std::thread::spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let mut writer = stream;
                    for line in reader.lines() {
                        let line = match line {
                            Ok(l) => l,
                            Err(_) => break,
                        };
                        if line.trim().is_empty() {
                            continue;
                        }
                        let resp = {
                            let mut core = core.lock().unwrap();
                            let resp = core.handle_line(&line);
                            if core.is_shutting_down() {
                                done.store(true, Ordering::SeqCst);
                            }
                            resp
                        };
                        if writeln!(writer, "{resp}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }

    for h in handles {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
