//! The `gillian` binary.
//!
//! ```text
//! gillian serve                     # newline-delimited JSON over stdin/stdout
//! gillian serve --socket PATH       # same protocol over a Unix domain socket
//! gillian serve --cache-dir PATH    # persist proofs across daemon restarts
//! gillian cache stats|clear|gc ...  # inspect / maintain the on-disk cache
//! ```

use gillian_server::{
    mode_label, parse_mode, serve_stdio_shared, serve_unix, workload, ProgramDb, ServerCore,
    WORKLOADS,
};
use proof_cache::{resolve_cache_dir, CacheStore, DirStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const USAGE: &str = "\
gillian — the hybrid verification daemon

USAGE:
    gillian serve [--socket PATH] [--cache-dir PATH]
    gillian lint [WORKLOAD ...] [--mode ts|fc] [--deny-warnings] [--json]
                 [--allow CODE ...] [--list-codes]
    gillian analyze [WORKLOAD ...] [--mode ts|fc] [--json]
    gillian cache stats [--dir PATH]
    gillian cache clear [--dir PATH]
    gillian cache gc --max-bytes N [--dir PATH]

COMMANDS:
    serve    Run the verification daemon. Requests are newline-delimited
             JSON objects ({\"cmd\":\"load\"|\"verify\"|\"update_spec\"|
             \"update_fn\"|\"lint\"|\"stats\"|\"shutdown\", ...}); one
             response line per request. Default transport is stdin/stdout;
             --socket PATH listens on a Unix domain socket instead.
             --cache-dir PATH (or the GILLIAN_CACHE_DIR environment
             variable) attaches a persistent proof cache: verified proofs
             survive restarts, and a fresh daemon re-proves only what
             changed.
    lint     Run the static analyzer (control flow, def-use, symbol
             resolution, predicate well-foundedness, precondition vacuity)
             over the named workloads — all of them by default — without
             any proof search. Exit 0 when nothing blocks, 1 when lint
             errors (or, with --deny-warnings, any finding) are present.
             --json emits one JSON object per workload. --allow CODE
             (repeatable) suppresses specific codes; --list-codes prints
             the full GLxxx code table with severities and exits.
    analyze  Run the abstract interpreter (interval/constancy/shape value
             analysis) over the named workloads — all of them by default —
             and dump the per-command invariants of every compiled
             procedure, with stable fingerprints. --json emits one JSON
             object per workload.
    cache    Maintain the persistent proof cache. The directory is --dir
             PATH, else GILLIAN_CACHE_DIR, else target/gillian-cache.
             stats prints entry/byte counts and the last run's hit rate;
             clear removes every record; gc --max-bytes N evicts
             least-recently-used records until the store fits.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let mut socket: Option<String> = None;
            let mut cache_dir: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--socket" => match rest.next() {
                        Some(path) => socket = Some(path.clone()),
                        None => die("--socket requires a path"),
                    },
                    "--cache-dir" => match rest.next() {
                        Some(path) => cache_dir = Some(PathBuf::from(path)),
                        None => die("--cache-dir requires a path"),
                    },
                    other => die(&format!("unknown argument `{other}`")),
                }
            }
            // The explicit flag wins; the environment variable (honoured by
            // resolve_cache_dir) lets wrappers and CI opt in without
            // touching the command line.
            let cache_dir = cache_dir.or_else(|| {
                std::env::var_os("GILLIAN_CACHE_DIR")
                    .filter(|v| !v.is_empty())
                    .map(|_| resolve_cache_dir())
            });
            let core = match cache_dir {
                None => ServerCore::new(),
                Some(dir) => ServerCore::with_cache_dir(dir),
            };
            let core = Arc::new(Mutex::new(core));
            install_signal_flush(Arc::clone(&core));
            let result = match socket {
                None => serve_stdio_shared(&core),
                Some(path) => serve_unix(&path, &core),
            };
            if let Err(e) = result {
                eprintln!("gillian serve: {e}");
                std::process::exit(1);
            }
        }
        Some("lint") => lint_command(&args[1..]),
        Some("analyze") => analyze_command(&args[1..]),
        Some("cache") => cache_command(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
        }
        Some(other) => die(&format!("unknown command `{other}`")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("gillian: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Set by the async-signal handler; drained by the watcher thread.
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_sig: i32) {
    // Async-signal context: flip a flag and nothing else.
    SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
}

/// Graceful shutdown on SIGTERM/SIGINT: a watcher thread waits for the
/// signal flag, then flushes the proof cache exactly like a `shutdown`
/// request — waiting out any in-flight request via the core mutex — and
/// exits. Both serve loops block in reads the signal cannot interrupt
/// portably (stdin `read_line`, the accept poll), so the watcher owns the
/// exit. `std` already links libc on every supported target; the raw
/// `signal(2)` declaration avoids growing the dependency tree.
fn install_signal_flush(core: Arc<Mutex<ServerCore>>) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    std::thread::spawn(move || loop {
        if SHUTDOWN_SIGNAL.load(Ordering::SeqCst) {
            {
                let mut core = core.lock().unwrap();
                core.flush_all();
            }
            eprintln!("gillian serve: signal received, proof cache flushed, exiting");
            std::process::exit(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

/// `gillian lint` — the static-analysis gate over the in-repo workloads.
/// Builds each selected workload (compilation + spec elaboration, no proof
/// search) and reports the analyzer's findings; the exit code makes it a CI
/// step.
fn lint_command(args: &[String]) {
    let mut names: Vec<String> = Vec::new();
    let mut mode: Option<String> = None;
    let mut deny_warnings = false;
    let mut json = false;
    let mut allow: Vec<String> = Vec::new();
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--mode" => match rest.next() {
                Some(m) => mode = Some(m.clone()),
                None => die("--mode requires ts or fc"),
            },
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--allow" => match rest.next() {
                Some(code) => allow.push(code.clone()),
                None => die("--allow requires a lint code (e.g. GL012)"),
            },
            "--list-codes" => {
                for (code, severity, description) in gillian_lint::CODES {
                    println!("{code}  {:<7} {description}", severity.label());
                }
                return;
            }
            flag if flag.starts_with('-') => die(&format!("unknown argument `{flag}`")),
            name => names.push(name.to_string()),
        }
    }
    let mode = mode.map(|s| match parse_mode(&s) {
        Some(m) => m,
        None => die(&format!("unknown mode `{s}` (use \"ts\" or \"fc\")")),
    });
    let selected: Vec<&str> = if names.is_empty() {
        WORKLOADS.iter().map(|w| w.name).collect()
    } else {
        names
            .iter()
            .map(|n| match workload(n) {
                Some(w) => w.name,
                None => die(&format!("unknown workload `{n}`")),
            })
            .collect()
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for name in selected {
        let db = match ProgramDb::load(name, mode, Some(1), Some(1)) {
            Ok(db) => db,
            Err(e) => die(&e),
        };
        let mut report = db
            .session
            .lint_report()
            .cloned()
            .expect("sessions lint at build time");
        // --allow mirrors LintOptions::allow: suppressed codes vanish from
        // the report before counting.
        if !allow.is_empty() {
            report
                .diagnostics
                .retain(|d| !allow.iter().any(|a| a == d.code));
        }
        let mode = mode_label(db.mode);
        let e = report.errors().count();
        let w = report.warnings().count();
        errors += e;
        warnings += w;
        if json {
            let diags: Vec<String> = report
                .diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":{},\"message\":{}}}",
                        d.code,
                        d.severity.label(),
                        driver::json_escape(&d.span.to_string()),
                        driver::json_escape(&d.message),
                    )
                })
                .collect();
            println!(
                "{{\"workload\":\"{name}\",\"mode\":\"{mode}\",\"errors\":{e},\"warnings\":{w},\"lints\":[{}]}}",
                diags.join(",")
            );
        } else {
            let verdict = if e + w == 0 {
                "clean".to_string()
            } else {
                format!("{e} error(s), {w} warning(s)")
            };
            println!("{name} ({mode}): {verdict}");
            for d in &report.diagnostics {
                println!("  {d}");
            }
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}

/// `gillian analyze` — dump the abstract-interpretation invariants of each
/// selected workload's compiled procedures. Like `lint`, this builds the
/// session (compilation + spec elaboration, no proof search); the
/// invariants themselves are computed by the session builder.
fn analyze_command(args: &[String]) {
    let mut names: Vec<String> = Vec::new();
    let mut mode: Option<String> = None;
    let mut json = false;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--mode" => match rest.next() {
                Some(m) => mode = Some(m.clone()),
                None => die("--mode requires ts or fc"),
            },
            "--json" => json = true,
            flag if flag.starts_with('-') => die(&format!("unknown argument `{flag}`")),
            name => names.push(name.to_string()),
        }
    }
    let mode = mode.map(|s| match parse_mode(&s) {
        Some(m) => m,
        None => die(&format!("unknown mode `{s}` (use \"ts\" or \"fc\")")),
    });
    let selected: Vec<&str> = if names.is_empty() {
        WORKLOADS.iter().map(|w| w.name).collect()
    } else {
        names
            .iter()
            .map(|n| match workload(n) {
                Some(w) => w.name,
                None => die(&format!("unknown workload `{n}`")),
            })
            .collect()
    };

    for name in selected {
        let db = match ProgramDb::load(name, mode, Some(1), Some(1)) {
            Ok(db) => db,
            Err(e) => die(&e),
        };
        let table = db.session.invariants();
        let mode = mode_label(db.mode);
        if json {
            let mut procs: Vec<String> = Vec::new();
            let mut sorted: Vec<_> = table.procs.values().collect();
            sorted.sort_by_key(|p| p.name.as_str());
            for p in sorted {
                let entries: Vec<String> = p
                    .entry
                    .iter()
                    .map(|s| match s {
                        None => "null".to_string(),
                        Some(s) if s.is_empty() => driver::json_escape("top"),
                        Some(s) => driver::json_escape(&s.render()),
                    })
                    .collect();
                procs.push(format!(
                    "{{\"name\":{},\"fingerprint\":\"{:016x}\",\"invariants\":[{}]}}",
                    driver::json_escape(p.name.as_str()),
                    p.fingerprint,
                    entries.join(",")
                ));
            }
            println!(
                "{{\"workload\":\"{name}\",\"mode\":\"{mode}\",\"fingerprint\":\"{:016x}\",\"procs\":[{}]}}",
                table.fingerprint,
                procs.join(",")
            );
        } else {
            println!(
                "{name} ({mode}): {} proc(s), fingerprint {:016x}",
                table.procs.len(),
                table.fingerprint
            );
            let mut sorted: Vec<_> = table.procs.values().collect();
            sorted.sort_by_key(|p| p.name.as_str());
            for p in sorted {
                println!("  proc {} [{:016x}]:", p.name, p.fingerprint);
                for (i, s) in p.entry.iter().enumerate() {
                    let line = match s {
                        None => "unreachable".to_string(),
                        Some(s) if s.is_empty() => "top".to_string(),
                        Some(s) => s.render(),
                    };
                    println!("    {i}: {line}");
                }
            }
        }
    }
}

/// `gillian cache stats|clear|gc` — maintenance of the on-disk proof cache.
fn cache_command(args: &[String]) {
    let action = match args.first() {
        Some(a) => a.as_str(),
        None => die("cache requires an action: stats, clear or gc"),
    };
    let mut dir: Option<PathBuf> = None;
    let mut max_bytes: Option<u64> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--dir" => match rest.next() {
                Some(path) => dir = Some(PathBuf::from(path)),
                None => die("--dir requires a path"),
            },
            "--max-bytes" => match rest.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) => max_bytes = Some(n),
                _ => die("--max-bytes requires an integer byte count"),
            },
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let store = DirStore::new(dir.unwrap_or_else(resolve_cache_dir));
    match action {
        "stats" => {
            let stats = store.stats();
            println!("cache directory: {}", store.root().display());
            println!("records:         {}", stats.entries);
            println!("bytes:           {}", stats.bytes);
            match store.last_run() {
                None => println!("last run:        (none recorded)"),
                Some(run) => {
                    let lookups = run.hits + run.misses;
                    let rate = if lookups == 0 {
                        0.0
                    } else {
                        100.0 * run.hits as f64 / lookups as f64
                    };
                    println!(
                        "last run:        {} hit / {} miss / {} written ({rate:.1}% hit rate)",
                        run.hits, run.misses, run.writes
                    );
                }
            }
        }
        "clear" => {
            let before = store.stats();
            store.clear();
            println!(
                "cleared {} record(s) ({} bytes) from {}",
                before.entries,
                before.bytes,
                store.root().display()
            );
        }
        "gc" => {
            let max = match max_bytes {
                Some(n) => n,
                None => die("gc requires --max-bytes N"),
            };
            let (removed, freed) = store.gc(max);
            let after = store.stats();
            println!(
                "evicted {removed} record(s) ({freed} bytes); {} record(s) ({} bytes) remain in {}",
                after.entries,
                after.bytes,
                store.root().display()
            );
        }
        other => die(&format!("unknown cache action `{other}`")),
    }
}
