//! Semi-automatic tactics (§5.3).
//!
//! `mutref_auto_resolve` is the single annotation the paper requires for
//! functional-correctness proofs of functions that mutate through a `&mut`
//! parameter (line 4 of Fig. 8): it applies Mut-Auto-Update (choosing the
//! prophecy value that will let the borrow close), closes the borrow, and
//! applies MutRef-Resolve to obtain the observation relating the current and
//! final values of the reference.
//!
//! `prophecy_auto_update` applies only the Mut-Auto-Update step.

use crate::state::{GRState, PROPH_CONTROLLER, VALUE_OBSERVER};
use gillian_engine::{debug_enabled, fresh_lvar_name, Asrt, Bindings, Config, Engine, VerError};
use gillian_solver::{simplify, Expr, Symbol};

/// Finds the guarded predicate or closing token corresponding to the mutable
/// reference `p`. Returns `(pred name, args, is_open, index)`.
fn find_mutref_borrow(cfg: &Config<GRState>, p: &Expr) -> Option<(Symbol, Vec<Expr>, bool, usize)> {
    for (idx, ct) in cfg.closing.iter().enumerate() {
        if ct.pred.as_str().starts_with("mutref_inner") && cfg.must_equal(&ct.args[0], p) {
            return Some((ct.pred, ct.args.clone(), true, idx));
        }
    }
    for (idx, gp) in cfg.guarded.iter().enumerate() {
        if gp.name.as_str().starts_with("mutref_inner") && cfg.must_equal(&gp.args[0], p) {
            return Some((gp.name, gp.args.clone(), false, idx));
        }
    }
    None
}

/// Splits the instantiated borrow-body definition into the prophecy-controller
/// atom and the rest.
fn split_body(asrt: &Asrt) -> (Vec<Asrt>, Option<Asrt>) {
    let mut others = Vec::new();
    let mut pc = None;
    for atom in asrt.atoms() {
        match &atom {
            Asrt::Core { name, .. } if name.as_str() == PROPH_CONTROLLER => pc = Some(atom),
            _ => others.push(atom),
        }
    }
    (others, pc)
}

/// Applies Mut-Auto-Update: re-establishes the invariant of the borrow body,
/// reads the new representation, and moves the value observer and prophecy
/// controller to it. Returns the updated configurations together with the new
/// representation value.
fn mut_auto_update(
    engine: &Engine<GRState>,
    cfg: Config<GRState>,
    pred: Symbol,
    args: &[Expr],
) -> Result<Vec<(Config<GRState>, Expr)>, VerError> {
    let proph = args
        .get(1)
        .cloned()
        .ok_or_else(|| VerError::new("mutable-reference borrow has no prophecy variable"))?;
    let pred_def = engine
        .prog
        .pred(pred)
        .ok_or_else(|| VerError::new(format!("unknown borrow predicate {pred}")))?
        .clone();
    let inst = gillian_engine::engine::freshen_lvars(&pred_def.instantiate(0, args));
    let (others, pc_atom) = split_body(&inst);
    let pc_atom = pc_atom
        .ok_or_else(|| VerError::new("borrow body has no prophecy controller (TS mode?)"))?;
    let others_asrt = Asrt::star(others);
    if debug_enabled() {
        eprintln!("[tactic] consuming borrow body: {others_asrt}");
        eprintln!("[tactic] folded: {:?}", cfg.folded);
        eprintln!("[tactic] path:");
        for f in &cfg.path {
            eprintln!("    {f}");
        }
    }
    let branches = engine.consume(cfg, Bindings::new(), &others_asrt)?;
    let mut out = Vec::new();
    for (c, b) in branches {
        // The new representation is whatever the prophecy controller atom
        // expects after folding the ownership predicate.
        let a_new = match &pc_atom {
            Asrt::Core { outs, .. } => simplify(&outs[0].subst_lvars(&|s| b.get(&s).cloned())),
            _ => unreachable!(),
        };
        if !a_new.lvars().is_empty() {
            continue;
        }
        // Consume the old observer and controller...
        let old_vo = Expr::LVar(fresh_lvar_name("old_vo"));
        let old_pc = Expr::LVar(fresh_lvar_name("old_pc"));
        let consume_vo_pc = Asrt::star(vec![
            Asrt::Core {
                name: Symbol::new(VALUE_OBSERVER),
                ins: vec![proph.clone()],
                outs: vec![old_vo.clone()],
            },
            Asrt::Core {
                name: Symbol::new(PROPH_CONTROLLER),
                ins: vec![proph.clone()],
                outs: vec![old_pc.clone()],
            },
        ]);
        let consumed = engine.consume(c, b.clone(), &consume_vo_pc)?;
        for (c2, b2) in consumed {
            // ... produce them back at the new representation (Mut-Update) ...
            let produce_vo_pc = Asrt::star(vec![
                Asrt::Core {
                    name: Symbol::new(VALUE_OBSERVER),
                    ins: vec![proph.clone()],
                    outs: vec![a_new.clone()],
                },
                Asrt::Core {
                    name: Symbol::new(PROPH_CONTROLLER),
                    ins: vec![proph.clone()],
                    outs: vec![a_new.clone()],
                },
            ]);
            let mut b3 = b2.clone();
            for c3 in engine.produce(c2, &produce_vo_pc, &mut b3) {
                // ... and restore the borrow-body resources we peeked at.
                let mut b4 = b3.clone();
                for c4 in engine.produce(c3.clone(), &others_asrt, &mut b4) {
                    out.push((c4, a_new.clone()));
                }
            }
        }
    }
    if out.is_empty() {
        Err(VerError::new(
            "Mut-Auto-Update failed: could not re-establish the borrow invariant",
        ))
    } else {
        Ok(out)
    }
}

/// Applies MutRef-Resolve: consumes the mutable-reference ownership (value
/// observer and full borrow) and produces the observation that the current
/// value equals the prophecy's final value.
fn mutref_resolve(
    engine: &Engine<GRState>,
    cfg: Config<GRState>,
    pred: Symbol,
    args: &[Expr],
) -> Result<Vec<Config<GRState>>, VerError> {
    let proph = args
        .get(1)
        .cloned()
        .ok_or_else(|| VerError::new("mutable-reference borrow has no prophecy variable"))?;
    let cur = Expr::LVar(fresh_lvar_name("cur"));
    let consume = Asrt::star(vec![
        Asrt::Core {
            name: Symbol::new(VALUE_OBSERVER),
            ins: vec![proph.clone()],
            outs: vec![cur.clone()],
        },
        Asrt::Guarded {
            name: pred,
            lft: Expr::LVar(fresh_lvar_name("lft")),
            args: args.to_vec(),
        },
    ]);
    let branches = engine.consume(cfg, Bindings::new(), &consume)?;
    let mut out = Vec::new();
    for (c, b) in branches {
        let cur_val = simplify(&cur.subst_lvars(&|s| b.get(&s).cloned()));
        let obs = Asrt::Observation(Expr::eq(cur_val, proph.clone()));
        let mut b2 = b.clone();
        out.extend(engine.produce(c, &obs, &mut b2));
    }
    if out.is_empty() {
        Err(VerError::new("MutRef-Resolve produced no feasible state"))
    } else {
        Ok(out)
    }
}

/// The `mutref_auto_resolve!(p)` tactic.
pub fn mutref_auto_resolve(
    engine: &Engine<GRState>,
    cfg: Config<GRState>,
    args: &[Expr],
) -> Result<Vec<Config<GRState>>, VerError> {
    let p = args
        .first()
        .ok_or_else(|| VerError::new("mutref_auto_resolve needs the reference as argument"))?;
    let (pred, bargs, is_open, idx) = find_mutref_borrow(&cfg, p)
        .ok_or_else(|| VerError::new(format!("no mutable-reference borrow found for {p}")))?;
    // Type-safety mode: no prophecies — just close the borrow if it is open.
    if pred.as_str().starts_with("mutref_inner_ts") {
        return if is_open {
            engine.gfold(cfg, idx)
        } else {
            Ok(vec![cfg])
        };
    }
    if !is_open {
        // The reference was never written through: resolve directly.
        return mutref_resolve(engine, cfg, pred, &bargs);
    }
    // 1. Mut-Auto-Update (choosing the new representation automatically).
    let updated = mut_auto_update(engine, cfg, pred, &bargs)?;
    let mut out = Vec::new();
    for (c, _a_new) in updated {
        // 2. Close the borrow (recovering the lifetime token).
        let tok_idx = c
            .closing
            .iter()
            .position(|ct| ct.pred == pred && c.must_equal(&ct.args[0], p))
            .ok_or_else(|| VerError::new("open borrow disappeared during Mut-Auto-Update"))?;
        let closed = engine.gfold(c, tok_idx)?;
        // 3. MutRef-Resolve.
        for c2 in closed {
            out.extend(mutref_resolve(engine, c2.clone(), pred, &bargs)?);
        }
    }
    Ok(out)
}

/// The `prophecy_auto_update(p)` tactic: Mut-Auto-Update only.
pub fn prophecy_auto_update(
    engine: &Engine<GRState>,
    cfg: Config<GRState>,
    args: &[Expr],
) -> Result<Vec<Config<GRState>>, VerError> {
    let p = args
        .first()
        .ok_or_else(|| VerError::new("prophecy_auto_update needs the reference as argument"))?;
    let (pred, bargs, is_open, _idx) = find_mutref_borrow(&cfg, p)
        .ok_or_else(|| VerError::new(format!("no mutable-reference borrow found for {p}")))?;
    if !is_open {
        return Ok(vec![cfg]);
    }
    let updated = mut_auto_update(engine, cfg, pred, &bargs)?;
    Ok(updated.into_iter().map(|(c, _)| c).collect())
}
