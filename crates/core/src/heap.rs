//! The symbolic Rust heap (§3 of the paper).
//!
//! Objects are hybrid trees of *structural nodes* (typed, layout-independent:
//! single symbolic values, uninitialised or framed-off regions, and structs
//! with one child per field) and *laid-out nodes* (array-like regions indexed
//! in multiples of an indexing type, holding segments with symbolic bounds —
//! Fig. 2). Loads and stores navigate projections, destructuring symbolic
//! struct values on demand and splitting/merging laid-out segments, all
//! without ever consulting a concrete layout.

use crate::types::{Address, ProjElem, TyId, Types, PTR_FIELD, PTR_OFFSET, PTR_TAG};
use gillian_engine::PureCtx;
use gillian_solver::{simplify, Expr};
use rust_ir::Ty;
use std::collections::BTreeMap;

/// Errors produced by heap operations.
#[derive(Clone, Debug)]
pub enum HeapError {
    /// The resource is not present in the heap (it may be framed off or
    /// hidden inside a predicate/borrow); the hint is the pointer whose
    /// resource is needed, so the engine can attempt recovery.
    Missing { msg: String, hint: Expr },
    /// A genuine error (use of uninitialised memory, double free, ...).
    Error(String),
    /// The operation is inconsistent with the current state (e.g. producing
    /// overlapping resources); the path vanishes.
    Vanish,
}

impl HeapError {
    fn missing(msg: impl Into<String>, hint: Expr) -> Self {
        HeapError::Missing {
            msg: msg.into(),
            hint,
        }
    }
}

/// Result type for heap operations.
pub type HeapResult<T> = Result<T, HeapError>;

/// The content of one laid-out segment.
#[derive(Clone, Debug, PartialEq)]
pub enum SegData {
    /// Uninitialised memory.
    Uninit,
    /// A sequence of values (one per element of the indexing type).
    Vals(Expr),
}

/// A laid-out segment covering `[start, end)` in elements of the indexing
/// type.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    pub start: Expr,
    pub end: Expr,
    pub data: SegData,
}

/// A node of the hybrid tree representation.
#[derive(Clone, Debug, PartialEq)]
pub enum HeapNode {
    /// Uninitialised memory of the node's type.
    Uninit,
    /// Memory that has been framed off (its resource is elsewhere).
    Missing,
    /// A single symbolic value of the node's type.
    Val(Expr),
    /// A struct with one child per field (in declaration order — field
    /// *identity*, not layout order).
    Struct(String, Vec<HeapNode>),
    /// A laid-out (array-like) node.
    Array { elem: Ty, segs: Vec<Segment> },
}

/// One heap object (allocation).
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// The type the allocation was made at.
    pub ty: Ty,
    pub node: HeapNode,
}

/// The symbolic heap: a finite map from object locations to objects.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Heap {
    objects: BTreeMap<u64, Object>,
    next_loc: u64,
}

impl Heap {
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Is the heap observably empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of live allocations (for diagnostics).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    fn fresh_loc(&mut self) -> u64 {
        let l = self.next_loc;
        self.next_loc += 1;
        l
    }

    // -----------------------------------------------------------------
    // Pointer resolution
    // -----------------------------------------------------------------

    /// Resolves a pointer expression to an address, looking through
    /// `ptr_field`/`ptr_offset` wrappers and path-condition equalities.
    pub fn resolve_ptr(&self, e: &Expr, ctx: &PureCtx<'_>, types: &Types) -> Option<Address> {
        self.resolve_ptr_depth(e, ctx, types, 8)
    }

    #[allow(clippy::only_used_in_recursion)]
    fn resolve_ptr_depth(
        &self,
        e: &Expr,
        ctx: &PureCtx<'_>,
        types: &Types,
        depth: usize,
    ) -> Option<Address> {
        if depth == 0 {
            return None;
        }
        let e = simplify(e);
        if let Some(addr) = Address::from_expr(&e) {
            return Some(addr);
        }
        if let Expr::Ctor(tag, args) = &e {
            if tag.as_str() == PTR_FIELD && args.len() == 3 {
                let base = self.resolve_ptr_depth(&args[0], ctx, types, depth - 1)?;
                let ty = TyId(args[1].as_int()? as u32);
                let idx = args[2].as_int()? as usize;
                return Some(base.with_field(ty, idx));
            }
            if tag.as_str() == PTR_OFFSET && args.len() == 3 {
                let base = self.resolve_ptr_depth(&args[0], ctx, types, depth - 1)?;
                let ty = TyId(args[1].as_int()? as u32);
                let count = args[2].clone();
                // Merge with a trailing index projection of the same type.
                let mut addr = base;
                if let Some(ProjElem::Index(t, off)) = addr.proj.last().cloned() {
                    if t == ty {
                        addr.proj.pop();
                        return Some(addr.with_index(ty, simplify(&Expr::add(off, count))));
                    }
                }
                return Some(addr.with_index(ty, count));
            }
        }
        // Look for a path-condition equality that gives the pointer a
        // concrete form.
        for fact in ctx.path.iter() {
            if let Expr::BinOp(gillian_solver::BinOp::Eq, a, b) = fact.as_ref() {
                if a.as_ref() == &e && is_ptr_shaped(b) {
                    return self.resolve_ptr_depth(b, ctx, types, depth - 1);
                }
                if b.as_ref() == &e && is_ptr_shaped(a) {
                    return self.resolve_ptr_depth(a, ctx, types, depth - 1);
                }
            }
        }
        // Fall back to solver-provable equalities (e.g. through constructor
        // injectivity): any pointer-shaped term of the path condition that
        // must equal `e` resolves it.
        let candidates: Vec<(Expr, Expr)> = ctx
            .path
            .iter()
            .filter_map(|fact| match fact.as_ref() {
                Expr::BinOp(gillian_solver::BinOp::Eq, a, b) => {
                    if is_ptr_shaped(b) {
                        Some(((**a).clone(), (**b).clone()))
                    } else if is_ptr_shaped(a) {
                        Some(((**b).clone(), (**a).clone()))
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect();
        for (other, ptr_side) in candidates {
            if ctx.must_equal(&other, &e) {
                if let Some(addr) = self.resolve_ptr_depth(&ptr_side, ctx, types, depth - 1) {
                    return Some(addr);
                }
            }
        }
        None
    }

    /// Resolves a pointer, giving it a fresh abstract location if it has none
    /// yet. Used by producers. Returns the address and the new equality fact.
    pub fn resolve_ptr_or_bind(
        &mut self,
        e: &Expr,
        ctx: &mut PureCtx<'_>,
        types: &Types,
    ) -> (Address, Vec<Expr>) {
        if let Some(addr) = self.resolve_ptr(e, ctx, types) {
            return (addr, vec![]);
        }
        // Peel wrappers so that the *base* gets the fresh location.
        let e = simplify(e);
        if let Expr::Ctor(tag, args) = &e {
            if (tag.as_str() == PTR_FIELD || tag.as_str() == PTR_OFFSET) && args.len() == 3 {
                let (base, mut facts) = self.resolve_ptr_or_bind(&args[0], ctx, types);
                let ty = TyId(args[1].as_int().unwrap_or(0) as u32);
                let addr = if tag.as_str() == PTR_FIELD {
                    base.with_field(ty, args[2].as_int().unwrap_or(0) as usize)
                } else {
                    base.with_index(ty, args[2].clone())
                };
                facts.push(Expr::eq(e.clone(), addr.to_expr()));
                return (addr, facts);
            }
        }
        let loc = self.fresh_loc();
        let addr = Address::base(loc);
        let fact = Expr::eq(e, addr.to_expr());
        (addr, vec![fact])
    }

    // -----------------------------------------------------------------
    // Allocation
    // -----------------------------------------------------------------

    /// Allocates a new object of type `ty`, initially uninitialised.
    pub fn alloc(&mut self, ty: Ty) -> Address {
        let loc = self.fresh_loc();
        self.objects.insert(
            loc,
            Object {
                ty,
                node: HeapNode::Uninit,
            },
        );
        Address::base(loc)
    }

    /// Allocates an array-like object of `count` elements of type `elem`.
    pub fn alloc_array(&mut self, elem: Ty, count: Expr) -> Address {
        let loc = self.fresh_loc();
        self.objects.insert(
            loc,
            Object {
                ty: elem.clone(),
                node: HeapNode::Array {
                    elem,
                    segs: vec![Segment {
                        start: Expr::Int(0),
                        end: count,
                        data: SegData::Uninit,
                    }],
                },
            },
        );
        Address::base(loc)
    }

    /// Frees a whole object. The object must be fully owned (no missing
    /// parts) — reading out whatever value is there is not required.
    pub fn free(&mut self, addr: &Address, hint: Expr) -> HeapResult<()> {
        if !addr.proj.is_empty() {
            return Err(HeapError::Error("free of an interior pointer".to_owned()));
        }
        match self.objects.remove(&addr.loc) {
            Some(obj) => {
                if node_has_missing(&obj.node) {
                    // Put it back: we do not own the whole allocation.
                    self.objects.insert(addr.loc, obj);
                    Err(HeapError::missing("free of partially-owned object", hint))
                } else {
                    Ok(())
                }
            }
            None => Err(HeapError::missing("free of unknown object", hint)),
        }
    }

    /// Re-types an array allocation (e.g. a `u8` byte allocation being used
    /// to store values of type `T`, as the standard-library `Vec` does). Only
    /// allowed while the allocation is entirely uninitialised.
    pub fn retype_array(
        &mut self,
        addr: &Address,
        new_elem: Ty,
        new_count: Expr,
        hint: Expr,
    ) -> HeapResult<()> {
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("retype of unknown object", hint.clone()))?;
        match &obj.node {
            HeapNode::Array { segs, .. } if segs.iter().all(|s| s.data == SegData::Uninit) => {
                obj.ty = new_elem.clone();
                obj.node = HeapNode::Array {
                    elem: new_elem,
                    segs: vec![Segment {
                        start: Expr::Int(0),
                        end: new_count,
                        data: SegData::Uninit,
                    }],
                };
                Ok(())
            }
            HeapNode::Array { .. } => Err(HeapError::Error(
                "cannot re-type an array that already holds values".to_owned(),
            )),
            _ => Err(HeapError::Error("retype of a non-array object".to_owned())),
        }
    }

    // -----------------------------------------------------------------
    // Typed loads and stores
    // -----------------------------------------------------------------

    /// Reads a value of type `ty` at the address.
    pub fn load(
        &mut self,
        addr: &Address,
        ty: &Ty,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<Expr> {
        let hint = addr.to_expr();
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => read_node(n, ty, types, ctx, &hint),
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => {
                let vals = read_range(segs, &offset, &count, ctx, &hint)?;
                Ok(simplify(&Expr::seq_at(vals, Expr::Int(0))))
            }
        }
    }

    /// Reads a value of type `ty` at the address in a *move* context: the
    /// memory is deinitialised afterwards (§3.2 — loads in a move context
    /// deinitialise the source).
    pub fn move_out(
        &mut self,
        addr: &Address,
        ty: &Ty,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<Expr> {
        let hint = addr.to_expr();
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => {
                let v = read_node(n, ty, types, ctx, &hint)?;
                *n = HeapNode::Uninit;
                Ok(v)
            }
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => {
                let idx = isolate(segs, &offset, &count, ctx, &hint)?;
                match segs[idx].data.clone() {
                    SegData::Vals(vs) => {
                        segs[idx].data = SegData::Uninit;
                        Ok(simplify(&Expr::seq_at(vs, Expr::Int(0))))
                    }
                    SegData::Uninit => Err(HeapError::Error(
                        "move out of uninitialised array memory".to_owned(),
                    )),
                }
            }
        }
    }

    /// Writes a value of type `ty` at the address.
    pub fn store(
        &mut self,
        addr: &Address,
        ty: &Ty,
        value: Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => {
                if matches!(n, HeapNode::Missing) {
                    return Err(HeapError::missing("store to framed-off memory", hint));
                }
                let _ = ty;
                *n = HeapNode::Val(value);
                Ok(())
            }
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => write_range(
                segs,
                &offset,
                &count,
                SegData::Vals(Expr::seq(vec![value])),
                ctx,
                &hint,
            ),
        }
    }

    // -----------------------------------------------------------------
    // Core-predicate support: consume/produce of typed points-to, uninit and
    // slices.
    // -----------------------------------------------------------------

    /// Consumes `addr ↦_ty v`, removing the resource and returning `v`.
    pub fn take(
        &mut self,
        addr: &Address,
        ty: &Ty,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<Expr> {
        let hint = addr.to_expr();
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => {
                let v = read_node(n, ty, types, ctx, &hint)?;
                *n = HeapNode::Missing;
                Ok(v)
            }
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => {
                let vals = take_range(segs, &offset, &count, ctx, &hint)?;
                Ok(simplify(&Expr::seq_at(vals, Expr::Int(0))))
            }
        }
    }

    /// Produces `addr ↦_ty v`.
    pub fn give(
        &mut self,
        addr: &Address,
        ty: &Ty,
        value: Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        self.ensure_object(addr, ty, types);
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .expect("object just ensured");
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => match n {
                HeapNode::Missing | HeapNode::Uninit => {
                    *n = HeapNode::Val(value);
                    Ok(())
                }
                _ => Err(HeapError::Vanish),
            },
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => give_range(
                segs,
                &offset,
                &count,
                SegData::Vals(Expr::seq(vec![value])),
                ctx,
            ),
        }
    }

    /// Consumes `uninit(addr, ty)`.
    pub fn take_uninit(
        &mut self,
        addr: &Address,
        _ty: &Ty,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => match n {
                HeapNode::Uninit => {
                    *n = HeapNode::Missing;
                    Ok(())
                }
                HeapNode::Missing => Err(HeapError::missing("uninit resource framed off", hint)),
                _ => Err(HeapError::Error("memory is initialised".to_owned())),
            },
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => {
                take_uninit_range(segs, &offset, &count, ctx, &hint)?;
                Ok(())
            }
        }
    }

    /// Produces `uninit(addr, ty)`.
    pub fn give_uninit(
        &mut self,
        addr: &Address,
        ty: &Ty,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        self.ensure_object(addr, ty, types);
        let obj = self
            .objects
            .get_mut(&addr.loc)
            .expect("object just ensured");
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::Struct(n) => match n {
                HeapNode::Missing => {
                    *n = HeapNode::Uninit;
                    Ok(())
                }
                _ => Err(HeapError::Vanish),
            },
            NodeRef::ArrayRange {
                segs,
                offset,
                count,
                ..
            } => give_range(segs, &offset, &count, SegData::Uninit, ctx),
        }
    }

    /// Consumes a slice of `count` values of type `elem` starting at `addr`,
    /// returning the sequence of values.
    pub fn take_slice(
        &mut self,
        addr: &Address,
        elem: &Ty,
        count: &Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<Expr> {
        let hint = addr.to_expr();
        let addr_indexed = ensure_index_proj(addr, elem, types);
        let obj = self
            .objects
            .get_mut(&addr_indexed.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr_indexed.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::ArrayRange { segs, offset, .. } => {
                take_range(segs, &offset, count, ctx, &hint)
            }
            NodeRef::Struct(_) => Err(HeapError::Error(
                "slice access into a structural node".to_owned(),
            )),
        }
    }

    /// Produces a slice of values.
    pub fn give_slice(
        &mut self,
        addr: &Address,
        elem: &Ty,
        count: &Expr,
        vals: Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        let addr_indexed = ensure_index_proj(addr, elem, types);
        self.ensure_array_object(&addr_indexed, elem);
        let obj = self
            .objects
            .get_mut(&addr_indexed.loc)
            .expect("object just ensured");
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr_indexed.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::ArrayRange { segs, offset, .. } => {
                give_range(segs, &offset, count, SegData::Vals(vals), ctx)
            }
            NodeRef::Struct(_) => Err(HeapError::Error(
                "slice production into a structural node".to_owned(),
            )),
        }
    }

    /// Consumes an uninitialised slice.
    pub fn take_uninit_slice(
        &mut self,
        addr: &Address,
        elem: &Ty,
        count: &Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        let addr_indexed = ensure_index_proj(addr, elem, types);
        let obj = self
            .objects
            .get_mut(&addr_indexed.loc)
            .ok_or_else(|| HeapError::missing("no object at location", base_hint(addr)))?;
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr_indexed.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::ArrayRange { segs, offset, .. } => {
                take_uninit_range(segs, &offset, count, ctx, &hint)
            }
            NodeRef::Struct(_) => Err(HeapError::Error(
                "slice access into a structural node".to_owned(),
            )),
        }
    }

    /// Produces an uninitialised slice.
    pub fn give_uninit_slice(
        &mut self,
        addr: &Address,
        elem: &Ty,
        count: &Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let hint = addr.to_expr();
        let addr_indexed = ensure_index_proj(addr, elem, types);
        self.ensure_array_object(&addr_indexed, elem);
        let obj = self
            .objects
            .get_mut(&addr_indexed.loc)
            .expect("object just ensured");
        let node = navigate(
            &mut obj.node,
            &obj.ty.clone(),
            &addr_indexed.proj,
            types,
            ctx,
            &hint,
        )?;
        match node {
            NodeRef::ArrayRange { segs, offset, .. } => {
                give_range(segs, &offset, count, SegData::Uninit, ctx)
            }
            NodeRef::Struct(_) => Err(HeapError::Error(
                "slice production into a structural node".to_owned(),
            )),
        }
    }

    /// Copies `count` elements of type `elem` from `src` to `dst` (the model
    /// of `ptr::copy_nonoverlapping`, used when a vector grows).
    pub fn copy_slice(
        &mut self,
        src: &Address,
        dst: &Address,
        elem: &Ty,
        count: &Expr,
        types: &Types,
        ctx: &mut PureCtx<'_>,
    ) -> HeapResult<()> {
        let vals = self.take_slice(src, elem, count, types, ctx)?;
        // Reading does not consume on a copy: put the source back.
        self.give_slice(src, elem, count, vals.clone(), types, ctx)?;
        // Overwrite the destination (which must currently be uninitialised).
        self.take_uninit_slice(dst, elem, count, types, ctx)?;
        self.give_slice(dst, elem, count, vals, types, ctx)
    }

    // -----------------------------------------------------------------
    // Helpers
    // -----------------------------------------------------------------

    fn ensure_object(&mut self, addr: &Address, ty: &Ty, types: &Types) {
        if self.objects.contains_key(&addr.loc) {
            return;
        }
        self.next_loc = self.next_loc.max(addr.loc + 1);
        let node = match addr.proj.first() {
            None => HeapNode::Missing,
            Some(ProjElem::Field(struct_ty, _)) => {
                let sty = types.resolve(*struct_ty);
                match types.struct_info(&sty) {
                    Some((tag, fields)) => {
                        HeapNode::Struct(tag, vec![HeapNode::Missing; fields.len()])
                    }
                    None => HeapNode::Missing,
                }
            }
            Some(ProjElem::Index(elem_ty, _)) => HeapNode::Array {
                elem: types.resolve(*elem_ty),
                segs: vec![],
            },
        };
        let root_ty = match addr.proj.first() {
            Some(ProjElem::Field(struct_ty, _)) => types.resolve(*struct_ty),
            Some(ProjElem::Index(elem_ty, _)) => types.resolve(*elem_ty),
            None => ty.clone(),
        };
        self.objects.insert(addr.loc, Object { ty: root_ty, node });
    }

    fn ensure_array_object(&mut self, addr: &Address, elem: &Ty) {
        if self.objects.contains_key(&addr.loc) {
            return;
        }
        self.next_loc = self.next_loc.max(addr.loc + 1);
        self.objects.insert(
            addr.loc,
            Object {
                ty: elem.clone(),
                node: HeapNode::Array {
                    elem: elem.clone(),
                    segs: vec![],
                },
            },
        );
    }
}

/// If the address has no trailing index projection, add `+elem 0` so that
/// slice operations always land on a laid-out node.
fn ensure_index_proj(addr: &Address, elem: &Ty, types: &Types) -> Address {
    match addr.proj.last() {
        Some(ProjElem::Index(_, _)) => addr.clone(),
        _ => addr.clone().with_index(types.intern(elem), Expr::Int(0)),
    }
}

fn base_hint(addr: &Address) -> Expr {
    Address::base(addr.loc).to_expr()
}

fn is_ptr_shaped(e: &Expr) -> bool {
    matches!(e, Expr::Ctor(tag, _) if tag.as_str() == PTR_TAG || tag.as_str() == PTR_FIELD || tag.as_str() == PTR_OFFSET)
}

fn node_has_missing(node: &HeapNode) -> bool {
    match node {
        HeapNode::Missing => true,
        HeapNode::Struct(_, fields) => fields.iter().any(node_has_missing),
        HeapNode::Array { segs, .. } => segs.is_empty(),
        _ => false,
    }
}

/// The result of navigating a projection: either a structural node or a
/// range within a laid-out node.
enum NodeRef<'a> {
    Struct(&'a mut HeapNode),
    ArrayRange {
        segs: &'a mut Vec<Segment>,
        offset: Expr,
        count: Expr,
    },
}

/// Navigates a projection, destructuring nodes as needed.
fn navigate<'a>(
    node: &'a mut HeapNode,
    node_ty: &Ty,
    proj: &[ProjElem],
    types: &Types,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<NodeRef<'a>> {
    match proj.first() {
        None => Ok(NodeRef::Struct(node)),
        Some(ProjElem::Field(struct_ty, idx)) => {
            let sty = types.resolve(*struct_ty);
            destructure(node, &sty, types, ctx, hint)?;
            match node {
                HeapNode::Struct(_, fields) => {
                    let field_ty = types
                        .struct_info(&sty)
                        .and_then(|(_, f)| f.get(*idx).cloned())
                        .unwrap_or(Ty::Unit);
                    let child = fields
                        .get_mut(*idx)
                        .ok_or_else(|| HeapError::Error(format!("no field {idx} in {sty}")))?;
                    navigate(child, &field_ty, &proj[1..], types, ctx, hint)
                }
                HeapNode::Missing => Err(HeapError::missing(
                    "field of framed-off struct",
                    hint.clone(),
                )),
                _ => Err(HeapError::Error(format!(
                    "field projection into a non-struct node of type {node_ty}"
                ))),
            }
        }
        Some(ProjElem::Index(elem_ty, off)) => {
            let ety = types.resolve(*elem_ty);
            // Convert uninitialised nodes into empty arrays lazily.
            if matches!(node, HeapNode::Uninit) {
                *node = HeapNode::Array {
                    elem: ety.clone(),
                    segs: vec![],
                };
            }
            match node {
                HeapNode::Array { elem, segs } => {
                    if *elem != ety {
                        return Err(HeapError::Error(format!(
                            "indexing type mismatch: array of {elem}, access at {ety}"
                        )));
                    }
                    if proj.len() > 1 {
                        return Err(HeapError::Error(
                            "projections below a laid-out node are not supported".to_owned(),
                        ));
                    }
                    Ok(NodeRef::ArrayRange {
                        segs,
                        offset: off.clone(),
                        count: Expr::Int(1),
                    })
                }
                HeapNode::Missing => Err(HeapError::missing(
                    "index into framed-off memory",
                    hint.clone(),
                )),
                _ => Err(HeapError::Error(
                    "index projection into a structural node".to_owned(),
                )),
            }
        }
    }
}

/// Destructures a `Val`/`Uninit` node of struct type into a `Struct` node.
fn destructure(
    node: &mut HeapNode,
    sty: &Ty,
    types: &Types,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<()> {
    match node {
        HeapNode::Struct(..) => Ok(()),
        HeapNode::Missing => Err(HeapError::missing("struct is framed off", hint.clone())),
        HeapNode::Uninit => {
            let (tag, fields) = types
                .struct_info(sty)
                .ok_or_else(|| HeapError::Error(format!("{sty} is not a struct type")))?;
            *node = HeapNode::Struct(tag, vec![HeapNode::Uninit; fields.len()]);
            Ok(())
        }
        HeapNode::Val(v) => {
            let (tag, fields) = types
                .struct_info(sty)
                .ok_or_else(|| HeapError::Error(format!("{sty} is not a struct type")))?;
            let field_vals: Vec<Expr> = (0..fields.len()).map(|_| ctx.fresh()).collect();
            let ctor = Expr::ctor(&format!("struct::{tag}"), field_vals.clone());
            let fact = Expr::eq(v.clone(), ctor);
            ctx.assume(fact);
            *node = HeapNode::Struct(tag, field_vals.into_iter().map(HeapNode::Val).collect());
            Ok(())
        }
        HeapNode::Array { .. } => Err(HeapError::Error(
            "cannot view a laid-out node as a struct".to_owned(),
        )),
    }
}

/// Reads the value of a structural node (recursively rebuilding struct
/// values).
#[allow(clippy::only_used_in_recursion)]
fn read_node(
    node: &HeapNode,
    ty: &Ty,
    types: &Types,
    _ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<Expr> {
    match node {
        HeapNode::Val(v) => Ok(v.clone()),
        HeapNode::Uninit => Err(HeapError::Error("load of uninitialised memory".to_owned())),
        HeapNode::Missing => Err(HeapError::missing(
            "load of framed-off memory",
            hint.clone(),
        )),
        HeapNode::Struct(tag, fields) => {
            let mut vals = Vec::new();
            for f in fields {
                vals.push(read_node(f, ty, types, _ctx, hint)?);
            }
            Ok(Expr::ctor(&format!("struct::{tag}"), vals))
        }
        HeapNode::Array { .. } => Err(HeapError::Error(
            "whole-array loads are not supported".to_owned(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Laid-out segment manipulation (Fig. 2: isolate and write)
// ---------------------------------------------------------------------------

fn seg_contains(seg: &Segment, off: &Expr, count: &Expr, ctx: &PureCtx<'_>) -> bool {
    let end = simplify(&Expr::add(off.clone(), count.clone()));
    ctx.entails(&Expr::le(seg.start.clone(), off.clone()))
        && ctx.entails(&Expr::le(end, seg.end.clone()))
}

fn subrange_of(seg: &Segment, off: &Expr, count: &Expr) -> SegData {
    match &seg.data {
        SegData::Uninit => SegData::Uninit,
        SegData::Vals(vs) => {
            let lo = simplify(&Expr::sub(off.clone(), seg.start.clone()));
            let hi = simplify(&Expr::add(lo.clone(), count.clone()));
            SegData::Vals(simplify(&Expr::seq_sub(vs.clone(), lo, hi)))
        }
    }
}

/// Merges adjacent segments of the same kind (values with values, uninit with
/// uninit) so that accesses spanning what used to be two productions succeed.
fn coalesce(segs: &mut Vec<Segment>, ctx: &mut PureCtx<'_>) {
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for i in 0..segs.len() {
            for j in 0..segs.len() {
                if i == j {
                    continue;
                }
                if !ctx.must_equal(&segs[i].end, &segs[j].start) {
                    continue;
                }
                let merged = match (&segs[i].data, &segs[j].data) {
                    (SegData::Uninit, SegData::Uninit) => Some(SegData::Uninit),
                    (SegData::Vals(a), SegData::Vals(b)) => Some(SegData::Vals(simplify(
                        &Expr::seq_concat(a.clone(), b.clone()),
                    ))),
                    _ => None,
                };
                if let Some(data) = merged {
                    let start = segs[i].start.clone();
                    let end = segs[j].end.clone();
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    segs.remove(hi);
                    segs.remove(lo);
                    segs.push(Segment { start, end, data });
                    changed = true;
                    break 'outer;
                }
            }
        }
    }
}

/// Splits the containing segment into (before, middle, after) around
/// `[off, off+count)` and returns the index where the middle part was.
fn isolate(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<usize> {
    let end = simplify(&Expr::add(off.clone(), count.clone()));
    if segs.iter().all(|s| !seg_contains(s, off, count, ctx)) {
        coalesce(segs, ctx);
    }
    let idx = segs
        .iter()
        .position(|s| seg_contains(s, off, count, ctx))
        .ok_or_else(|| HeapError::missing("no segment covers the accessed range", hint.clone()))?;
    let seg = segs.remove(idx);
    let mut insert_at = idx;
    // Part before the accessed range.
    if !ctx.must_equal(&seg.start, off) {
        segs.insert(
            insert_at,
            Segment {
                start: seg.start.clone(),
                end: off.clone(),
                data: subrange_of(
                    &seg,
                    &seg.start,
                    &simplify(&Expr::sub(off.clone(), seg.start.clone())),
                ),
            },
        );
        insert_at += 1;
    }
    // The accessed range itself.
    segs.insert(
        insert_at,
        Segment {
            start: off.clone(),
            end: end.clone(),
            data: subrange_of(&seg, off, count),
        },
    );
    // Part after the accessed range.
    if !ctx.must_equal(&seg.end, &end) {
        segs.insert(
            insert_at + 1,
            Segment {
                start: end.clone(),
                end: seg.end.clone(),
                data: subrange_of(
                    &seg,
                    &end,
                    &simplify(&Expr::sub(seg.end.clone(), end.clone())),
                ),
            },
        );
    }
    Ok(insert_at)
}

fn read_range(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<Expr> {
    let idx = isolate(segs, off, count, ctx, hint)?;
    match &segs[idx].data {
        SegData::Vals(vs) => Ok(vs.clone()),
        SegData::Uninit => Err(HeapError::Error(
            "load of uninitialised array memory".to_owned(),
        )),
    }
}

fn write_range(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    data: SegData,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<()> {
    let idx = isolate(segs, off, count, ctx, hint)?;
    segs[idx].data = data;
    Ok(())
}

fn take_range(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<Expr> {
    if ctx.entails(&Expr::le(count.clone(), Expr::Int(0))) {
        return Ok(Expr::empty_seq());
    }
    let idx = isolate(segs, off, count, ctx, hint)?;
    match segs[idx].data.clone() {
        SegData::Vals(vs) => {
            segs.remove(idx);
            Ok(vs)
        }
        SegData::Uninit => Err(HeapError::Error(
            "consuming values from uninitialised memory".to_owned(),
        )),
    }
}

fn take_uninit_range(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    ctx: &mut PureCtx<'_>,
    hint: &Expr,
) -> HeapResult<()> {
    if ctx.entails(&Expr::le(count.clone(), Expr::Int(0))) {
        return Ok(());
    }
    let idx = isolate(segs, off, count, ctx, hint)?;
    match segs[idx].data {
        SegData::Uninit => {
            segs.remove(idx);
            Ok(())
        }
        SegData::Vals(_) => Err(HeapError::Error(
            "expected uninitialised memory but found values".to_owned(),
        )),
    }
}

fn give_range(
    segs: &mut Vec<Segment>,
    off: &Expr,
    count: &Expr,
    data: SegData,
    ctx: &mut PureCtx<'_>,
) -> HeapResult<()> {
    let end = simplify(&Expr::add(off.clone(), count.clone()));
    // Producing a region that definitely overlaps an existing one is
    // inconsistent (separation); otherwise record disjointness facts.
    for seg in segs.iter() {
        let disjoint = Expr::or(
            Expr::le(end.clone(), seg.start.clone()),
            Expr::le(seg.end.clone(), off.clone()),
        );
        if !ctx.assume(disjoint) {
            return Err(HeapError::Vanish);
        }
    }
    // Empty ranges carry no resource.
    if ctx.entails(&Expr::le(end.clone(), off.clone())) {
        return Ok(());
    }
    segs.push(Segment {
        start: off.clone(),
        end,
        data,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;
    use gillian_solver::{Solver, VarGen};
    use rust_ir::{AdtDef, LayoutOracle, Program};

    fn setup() -> (Types, Solver) {
        let mut p = Program::new("t");
        p.add_adt(AdtDef::strukt(
            "Pair",
            &[],
            vec![("a", Ty::usize()), ("b", Ty::usize())],
        ));
        (TypeRegistry::new(p, LayoutOracle::default()), Solver::new())
    }

    fn with_ctx<R>(
        solver: &Solver,
        path: &mut Vec<std::sync::Arc<Expr>>,
        vars: &mut VarGen,
        f: impl FnOnce(&mut PureCtx<'_>) -> R,
    ) -> R {
        let sctx = solver.ctx();
        // Re-assert any pre-seeded path facts into the fresh context.
        for fact in path.iter() {
            sctx.assert_expr(fact);
        }
        let mut ctx = PureCtx {
            ctx: &sctx,
            path,
            vars,
        };
        f(&mut ctx)
    }

    #[test]
    fn alloc_store_load_round_trip() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let pair_ty = Ty::adt("Pair", vec![]);
        let addr = heap.alloc(pair_ty.clone());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            let pair_id = types.intern(&pair_ty);
            let field0 = addr.clone().with_field(pair_id, 0);
            heap.store(&field0, &Ty::usize(), Expr::Int(7), &types, ctx)
                .unwrap();
            let v = heap.load(&field0, &Ty::usize(), &types, ctx).unwrap();
            assert_eq!(v, Expr::Int(7));
        });
    }

    #[test]
    fn load_uninitialised_field_is_an_error() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let pair_ty = Ty::adt("Pair", vec![]);
        let addr = heap.alloc(pair_ty.clone());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            let pair_id = types.intern(&pair_ty);
            let field1 = addr.clone().with_field(pair_id, 1);
            match heap.load(&field1, &Ty::usize(), &types, ctx) {
                Err(HeapError::Error(_)) => {}
                other => panic!("expected error, got {other:?}"),
            }
        });
    }

    #[test]
    fn symbolic_struct_value_destructures_on_field_access() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let pair_ty = Ty::adt("Pair", vec![]);
        let v = Expr::Var(vars.fresh());
        let addr = heap.alloc(pair_ty.clone());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            heap.store(&addr, &pair_ty, v.clone(), &types, ctx).unwrap();
            let pair_id = types.intern(&pair_ty);
            let field0 = addr.clone().with_field(pair_id, 0);
            let f0 = heap.load(&field0, &Ty::usize(), &types, ctx).unwrap();
            assert!(matches!(f0, Expr::Var(_)));
        });
        // Destructuring recorded the equality v == struct::Pair(f0, f1).
        assert!(path.iter().any(|f| matches!(
            f.as_ref(),
            Expr::BinOp(gillian_solver::BinOp::Eq, a, _) if a.as_ref() == &v
        ) || matches!(
            f.as_ref(),
            Expr::BinOp(gillian_solver::BinOp::Eq, _, b) if b.as_ref() == &v
        )));
    }

    #[test]
    fn take_then_load_reports_missing() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let addr = heap.alloc(Ty::usize());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            heap.store(&addr, &Ty::usize(), Expr::Int(3), &types, ctx)
                .unwrap();
            let v = heap.take(&addr, &Ty::usize(), &types, ctx).unwrap();
            assert_eq!(v, Expr::Int(3));
            match heap.load(&addr, &Ty::usize(), &types, ctx) {
                Err(HeapError::Missing { .. }) => {}
                other => panic!("expected missing, got {other:?}"),
            }
        });
    }

    #[test]
    fn laid_out_isolate_and_write_figure_2() {
        // A laid-out node [0, n) with values [0, k) and uninit [k, n):
        // writing one value at offset k extends the value region.
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let n = Expr::Var(vars.fresh());
        let k = Expr::Var(vars.fresh());
        let vs = Expr::Var(vars.fresh());
        path.push(std::sync::Arc::new(Expr::le(Expr::Int(0), k.clone())));
        path.push(std::sync::Arc::new(Expr::lt(k.clone(), n.clone())));
        path.push(std::sync::Arc::new(Expr::eq(
            Expr::seq_len(vs.clone()),
            k.clone(),
        )));
        let elem = Ty::usize();
        let addr = heap.alloc_array(elem.clone(), n.clone());
        let elem_id = types.intern(&elem);
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            // Fill [0, k) with values.
            heap.take_uninit_slice(&addr, &elem, &k, &types, ctx)
                .unwrap();
            heap.give_slice(&addr, &elem, &k, vs.clone(), &types, ctx)
                .unwrap();
            // Write a single element at offset k.
            let at_k = addr.clone().with_index(elem_id, k.clone());
            heap.store(&at_k, &elem, Expr::Int(99), &types, ctx)
                .unwrap();
            let back = heap.load(&at_k, &elem, &types, ctx).unwrap();
            assert_eq!(back, Expr::Int(99));
        });
    }

    #[test]
    fn free_whole_object() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let addr = heap.alloc(Ty::usize());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            heap.store(&addr, &Ty::usize(), Expr::Int(1), &types, ctx)
                .unwrap();
        });
        heap.free(&addr, addr.to_expr()).unwrap();
        assert!(heap.is_empty());
        assert!(heap.free(&addr, addr.to_expr()).is_err());
    }

    #[test]
    fn resolve_ptr_through_path_equality() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let p = Expr::Var(vars.fresh());
        let addr = heap.alloc(Ty::usize());
        path.push(std::sync::Arc::new(Expr::eq(p.clone(), addr.to_expr())));
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            let resolved = heap.resolve_ptr(&p, ctx, &types).unwrap();
            assert_eq!(resolved, addr);
        });
    }

    #[test]
    fn resolve_ptr_or_bind_allocates_abstract_location() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let p = Expr::Var(vars.fresh());
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            let (addr, facts) = heap.resolve_ptr_or_bind(&p, ctx, &types);
            assert!(addr.proj.is_empty());
            assert_eq!(facts.len(), 1);
        });
    }

    #[test]
    fn retype_array_only_when_uninit() {
        let (types, solver) = setup();
        let mut heap = Heap::new();
        let mut path = vec![];
        let mut vars = VarGen::new();
        let bytes = Expr::Int(32);
        let addr = heap.alloc_array(Ty::u8(), bytes);
        heap.retype_array(&addr, Ty::usize(), Expr::Int(4), addr.to_expr())
            .unwrap();
        with_ctx(&solver, &mut path, &mut vars, |ctx| {
            let id = types.intern(&Ty::usize());
            let at0 = addr.clone().with_index(id, Expr::Int(0));
            heap.store(&at0, &Ty::usize(), Expr::Int(5), &types, ctx)
                .unwrap();
        });
        assert!(heap
            .retype_array(&addr, Ty::u8(), Expr::Int(32), addr.to_expr())
            .is_err());
    }
}
