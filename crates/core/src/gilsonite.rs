//! Gilsonite: the assertion and specification layer of Gillian-Rust.
//!
//! This module is the programmatic equivalent of the paper's proc-macro
//! surface: the `Ownable` trait (§2.2), the `#[show_safety]` /
//! `#[specification]` attributes and the general schema of §6 that elaborates
//! hybrid (Pearlite-level) pre/postconditions into Gilsonite specifications,
//! the ownership predicate of mutable references with parametric prophecies
//! (§5.1), and the `#[extract_lemma]` / `#[with_freeze_lemma]` generators
//! (§4.3, App. A/B).
//!
//! Conventions for logical-variable names inside `requires`/`ensures`
//! expressions handed to [`GilsoniteCtx::fn_spec`]:
//!
//! * `#<param>_repr` — representation of an owned parameter;
//! * `#<param>_cur` / `#<param>_fin` — current and final representation of a
//!   `&mut` parameter (`(*p)@` and `(^p)@` in Pearlite);
//! * `#ret_repr`, `#ret_cur`, `#ret_fin` — the same for the return value.

use crate::state::{LFT_TOKEN, POINTS_TO, PROPH_CONTROLLER, VALUE_OBSERVER};
use crate::types::Types;
use gillian_engine::{Asrt, Lemma, Pred, Prog, Spec};
use gillian_solver::{Expr, Symbol};
use rust_ir::{FnDef, IntTy, Mutability, Ty};
use std::collections::HashMap;

/// Which property is being verified: type safety only, or full functional
/// correctness (which subsumes type safety). TS mode uses the simpler
/// encoding that eschews prophecies (§7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecMode {
    TypeSafety,
    FunctionalCorrectness,
}

/// A registered `Ownable` implementation: the predicate connecting values of
/// a type to their pure representation.
#[derive(Clone, Debug)]
pub struct Ownable {
    /// The implementing type (generic arguments left as parameters).
    pub ty: Ty,
    /// The ownership predicate: parameters `(self, repr)`, 1 in / 1 out.
    pub pred: Symbol,
}

/// The Gilsonite elaboration context: accumulates predicates, specifications
/// and lemmas into a Gillian program.
pub struct GilsoniteCtx {
    pub types: Types,
    pub mode: SpecMode,
    pub prog: Prog,
    own_preds: HashMap<String, Symbol>,
    mutref_preds: HashMap<String, Symbol>,
}

/// The logical variable `#<name>`.
pub fn lv(name: &str) -> Expr {
    Expr::lvar(name)
}

/// The spec-level lifetime variable κ.
pub fn kappa() -> Expr {
    Expr::lvar("kappa")
}

impl GilsoniteCtx {
    /// Creates a new context.
    pub fn new(types: Types, mode: SpecMode) -> Self {
        GilsoniteCtx {
            types,
            mode,
            prog: Prog::new(),
            own_preds: HashMap::new(),
            mutref_preds: HashMap::new(),
        }
    }

    fn ty_key(ty: &Ty) -> String {
        format!("{ty}")
    }

    /// Registers a user-defined `Ownable` implementation (e.g. the
    /// `LinkedList<T>` ownership predicate of §2.2). The predicate must have
    /// exactly two parameters `(self, repr)` with one in-parameter.
    pub fn register_own(&mut self, ty: &Ty, pred: Pred) -> Ownable {
        let name = pred.name;
        self.own_preds.insert(Self::ty_key(ty), name);
        self.prog.add_pred(pred);
        Ownable {
            ty: ty.clone(),
            pred: name,
        }
    }

    /// Registers an additional user predicate (e.g. `dll_seg`).
    pub fn register_pred(&mut self, pred: Pred) {
        self.prog.add_pred(pred);
    }

    /// Registers a lemma.
    pub fn register_lemma(&mut self, lemma: Lemma) {
        self.prog.add_lemma(lemma);
    }

    /// Declares a generic type parameter `T`: its ownership predicate is
    /// abstract (§4.2 — "ownership predicates for type parameters are
    /// compiled to abstract predicates").
    pub fn register_type_param(&mut self, name: &str) -> Symbol {
        let pred_name = format!("own_param_{name}");
        let pred = Pred::abstract_pred(&pred_name, &["self", "repr"], 1);
        let sym = pred.name;
        self.own_preds.insert(Self::ty_key(&Ty::param(name)), sym);
        self.prog.add_pred(pred);
        sym
    }

    /// The ownership predicate for a type, creating built-in instances on
    /// demand (machine integers, booleans, `Box`, `Option`).
    pub fn own_pred(&mut self, ty: &Ty) -> Symbol {
        let key = Self::ty_key(ty);
        if let Some(sym) = self.own_preds.get(&key) {
            return *sym;
        }
        let sym = match ty {
            Ty::Int(ity) => self.builtin_int_own(*ity),
            Ty::Bool => self.builtin_simple_own("own_bool", Ty::Bool),
            Ty::Unit => self.builtin_simple_own("own_unit", Ty::Unit),
            Ty::Boxed(inner) => self.builtin_box_own(inner),
            Ty::Option(inner) => self.builtin_option_own(inner),
            Ty::Param(p) => {
                let p = p.clone();
                return self.register_type_param(&p);
            }
            other => panic!("no ownership predicate registered for type {other}"),
        };
        self.own_preds.insert(key, sym);
        sym
    }

    /// The assertion `own_T(value, repr)`.
    pub fn own_asrt(&mut self, ty: &Ty, value: Expr, repr: Expr) -> Asrt {
        let pred = self.own_pred(ty);
        Asrt::Pred {
            name: pred,
            args: vec![value, repr],
        }
    }

    fn builtin_int_own(&mut self, ity: IntTy) -> Symbol {
        let name = format!("own_{ity}");
        let def = Asrt::star(vec![
            Asrt::pure(Expr::eq(lv("self"), lv("repr"))),
            Asrt::pure(Expr::le(Expr::Int(ity.min()), lv("self"))),
            Asrt::pure(Expr::le(lv("self"), Expr::Int(ity.max()))),
        ]);
        let pred = Pred::new(&name, &["self", "repr"], 1, vec![def]);
        let sym = pred.name;
        self.prog.add_pred(pred);
        sym
    }

    fn builtin_simple_own(&mut self, name: &str, _ty: Ty) -> Symbol {
        let def = Asrt::pure(Expr::eq(lv("self"), lv("repr")));
        let pred = Pred::new(name, &["self", "repr"], 1, vec![def]);
        let sym = pred.name;
        self.prog.add_pred(pred);
        sym
    }

    fn builtin_box_own(&mut self, inner: &Ty) -> Symbol {
        let name = format!("own_box${}", Self::ty_key(inner));
        let inner_own = self.own_asrt(inner, lv("v"), lv("repr"));
        let def = Asrt::star(vec![
            Asrt::Core {
                name: Symbol::new(POINTS_TO),
                ins: vec![lv("self"), self.types.intern(inner).to_expr()],
                outs: vec![lv("v")],
            },
            inner_own,
        ]);
        let pred = Pred::new(&name, &["self", "repr"], 1, vec![def]);
        let sym = pred.name;
        self.prog.add_pred(pred);
        sym
    }

    fn builtin_option_own(&mut self, inner: &Ty) -> Symbol {
        let name = format!("own_option${}", Self::ty_key(inner));
        let inner_own = self.own_asrt(inner, lv("w"), lv("rw"));
        let def_none = Asrt::star(vec![
            Asrt::pure(Expr::eq(lv("self"), Expr::none())),
            Asrt::pure(Expr::eq(lv("repr"), Expr::none())),
        ]);
        let def_some = Asrt::star(vec![
            Asrt::pure(Expr::eq(lv("self"), Expr::some(lv("w")))),
            inner_own,
            Asrt::pure(Expr::eq(lv("repr"), Expr::some(lv("rw")))),
        ]);
        let pred = Pred::new(&name, &["self", "repr"], 1, vec![def_none, def_some]);
        let sym = pred.name;
        self.prog.add_pred(pred);
        sym
    }

    /// The borrow-body predicate of `&'κ mut T` (§4.2 and §5.1):
    ///
    /// * FC mode: `mutref_inner$T(p, x) := p ↦_T v ∗ own_T(v, a) ∗ PC_x(a)`
    /// * TS mode: `mutref_inner_ts$T(p) := p ↦_T v ∗ own_T(v, a)`
    pub fn mutref_inner_pred(&mut self, inner: &Ty) -> Symbol {
        let key = format!("{:?}${}", self.mode, Self::ty_key(inner));
        if let Some(sym) = self.mutref_preds.get(&key) {
            return *sym;
        }
        let inner_own = self.own_asrt(inner, lv("v"), lv("a"));
        let points_to = Asrt::Core {
            name: Symbol::new(POINTS_TO),
            ins: vec![lv("p"), self.types.intern(inner).to_expr()],
            outs: vec![lv("v")],
        };
        let pred = match self.mode {
            SpecMode::FunctionalCorrectness => {
                let name = format!("mutref_inner${}", Self::ty_key(inner));
                let def = Asrt::star(vec![
                    points_to,
                    inner_own,
                    Asrt::Core {
                        name: Symbol::new(PROPH_CONTROLLER),
                        ins: vec![lv("x")],
                        outs: vec![lv("a")],
                    },
                ]);
                Pred::new(&name, &["p", "x"], 2, vec![def])
            }
            SpecMode::TypeSafety => {
                let name = format!("mutref_inner_ts${}", Self::ty_key(inner));
                let def = Asrt::star(vec![points_to, inner_own]);
                Pred::new(&name, &["p"], 1, vec![def])
            }
        };
        let sym = pred.name;
        self.prog.add_pred(pred);
        self.mutref_preds.insert(key, sym);
        sym
    }

    /// The ownership atoms of a `&'κ mut T` value `p` whose representation is
    /// the pair (`cur`, `fin`) with prophecy variable `proph`.
    fn mutref_ownership(
        &mut self,
        inner: &Ty,
        p: Expr,
        cur: Expr,
        fin: Expr,
        proph: Expr,
    ) -> Vec<Asrt> {
        let pred = self.mutref_inner_pred(inner);
        match self.mode {
            SpecMode::FunctionalCorrectness => vec![
                Asrt::Core {
                    name: Symbol::new(VALUE_OBSERVER),
                    ins: vec![proph.clone()],
                    outs: vec![cur],
                },
                Asrt::Guarded {
                    name: pred,
                    lft: kappa(),
                    args: vec![p, proph.clone()],
                },
                Asrt::pure(Expr::eq(fin, proph)),
            ],
            SpecMode::TypeSafety => vec![Asrt::Guarded {
                name: pred,
                lft: kappa(),
                args: vec![p],
            }],
        }
    }

    /// Elaborates a hybrid specification with explicit postcondition cases.
    /// Each case carries *binders* (pure equalities that introduce logical
    /// variables, e.g. `#ret_repr == Some(#x)` for the `Some` case of
    /// `pop_front`) and *observations* (the actual functional-correctness
    /// facts). This is the quantifier-free shape into which creusot-lite
    /// elaborates Pearlite `forall .. ==> ..` postconditions.
    pub fn fn_spec_full(
        &mut self,
        f: &FnDef,
        requires: Vec<Expr>,
        cases: Vec<(Vec<Expr>, Vec<Expr>)>,
    ) -> Spec {
        let mut spec =
            self.fn_spec_cases(f, requires, cases.iter().map(|(_, e)| e.clone()).collect());
        // Interleave the binder equalities right after the ownership atoms of
        // each postcondition (before its observations).
        let mut new_posts = Vec::new();
        for (post, (binds, _)) in spec.posts.iter().zip(cases.iter()) {
            let atoms = post.atoms();
            let mut rebuilt: Vec<Asrt> = Vec::new();
            let mut binds_inserted = false;
            for atom in atoms {
                if matches!(atom, Asrt::Observation(_)) && !binds_inserted {
                    for b in binds {
                        rebuilt.push(Asrt::pure(b.clone()));
                    }
                    binds_inserted = true;
                }
                rebuilt.push(atom);
            }
            if !binds_inserted {
                for b in binds {
                    rebuilt.push(Asrt::pure(b.clone()));
                }
            }
            new_posts.push(Asrt::star(rebuilt));
        }
        spec.posts = new_posts;
        spec
    }

    /// Elaborates a hybrid specification into a Gilsonite [`Spec`] following
    /// the general schema of §6: every parameter is owned (with a fresh
    /// representation variable), the preconditions become observations over
    /// those representations, and the postconditions own the return value and
    /// add observations. `ensures_cases` produces one postcondition per case
    /// (used e.g. for `pop_front`'s `None`/`Some` split).
    pub fn fn_spec_cases(
        &mut self,
        f: &FnDef,
        requires: Vec<Expr>,
        ensures_cases: Vec<Vec<Expr>>,
    ) -> Spec {
        let mut pre_atoms: Vec<Asrt> = Vec::new();
        let mut has_ref = false;
        for (pname, pty) in &f.params {
            match pty {
                Ty::Ref(_, Mutability::Mut, inner) => {
                    has_ref = true;
                    let atoms = self.mutref_ownership(
                        inner,
                        Expr::pvar(pname),
                        lv(&format!("{pname}_cur")),
                        lv(&format!("{pname}_fin")),
                        lv(&format!("{pname}_proph")),
                    );
                    pre_atoms.extend(atoms);
                }
                Ty::Ref(_, Mutability::Not, _) => {
                    panic!("shared references are not supported (see §8 of the paper)")
                }
                _ => {
                    let own = self.own_asrt(pty, Expr::pvar(pname), lv(&format!("{pname}_repr")));
                    pre_atoms.push(own);
                }
            }
        }
        if has_ref {
            pre_atoms.push(Asrt::Core {
                name: Symbol::new(LFT_TOKEN),
                ins: vec![kappa()],
                outs: vec![Expr::Int(1)],
            });
        }
        if self.mode == SpecMode::FunctionalCorrectness {
            for r in requires {
                pre_atoms.push(Asrt::Observation(r));
            }
        }
        let pre = Asrt::star(pre_atoms);

        let mut posts = Vec::new();
        for ensures in ensures_cases {
            let mut post_atoms: Vec<Asrt> = Vec::new();
            match &f.ret_ty {
                Ty::Unit => {}
                Ty::Ref(_, Mutability::Mut, inner) => {
                    let atoms = self.mutref_ownership(
                        inner,
                        Expr::pvar(gillian_engine::RET_VAR),
                        lv("ret_cur"),
                        lv("ret_fin"),
                        lv("ret_proph"),
                    );
                    post_atoms.extend(atoms);
                }
                other => {
                    let own =
                        self.own_asrt(other, Expr::pvar(gillian_engine::RET_VAR), lv("ret_repr"));
                    post_atoms.push(own);
                }
            }
            if self.mode == SpecMode::FunctionalCorrectness {
                for e in ensures {
                    post_atoms.push(Asrt::Observation(e));
                }
            }
            if has_ref {
                post_atoms.push(Asrt::Core {
                    name: Symbol::new(LFT_TOKEN),
                    ins: vec![kappa()],
                    outs: vec![Expr::Int(1)],
                });
            }
            posts.push(Asrt::star(post_atoms));
        }
        if posts.is_empty() {
            posts.push(Asrt::Emp);
        }
        Spec::with_posts(&f.name, pre, posts)
    }

    /// Elaborates a specification with a single postcondition.
    pub fn fn_spec(&mut self, f: &FnDef, requires: Vec<Expr>, ensures: Vec<Expr>) -> Spec {
        self.fn_spec_cases(f, requires, vec![ensures])
    }

    /// The `#[show_safety]` expansion (§2.2): ownership of every parameter in
    /// the precondition, ownership of the result in the postcondition, no
    /// functional-correctness observations.
    pub fn show_safety_spec(&mut self, f: &FnDef) -> Spec {
        self.fn_spec_cases(f, vec![], vec![vec![]])
    }

    /// Registers a specification into the program.
    pub fn add_spec(&mut self, spec: Spec) {
        self.prog.add_spec(spec);
    }

    /// The `#[extract_lemma]` generator (§4.3, App. B): produces a *trusted*
    /// lemma corresponding to the conclusion of Borrow-Extract-Proph. The
    /// hypothesis premise (the separation between the extracted resource and
    /// the magic wand) is proven in Iris in the original development; here it
    /// is part of the trusted base, as DESIGN.md documents.
    ///
    /// * `assuming` — the persistent context F;
    /// * `from` — the borrow being cut (predicate name + args, including the
    ///   prophecy variable as last argument in FC mode);
    /// * `extract` — the borrow body of the extracted reference (typically
    ///   `mutref_inner$T(elem_ptr, y)`);
    /// * `relate` — the function `f(a, b)` relating the representation `a` of
    ///   the source borrow to the representation `b` of the extracted one,
    ///   given as a pair of observations over `#a`, `#b`, `#x`, `#y`.
    #[allow(clippy::too_many_arguments)]
    pub fn extract_lemma(
        &mut self,
        name: &str,
        params: &[&str],
        assuming: Expr,
        from_pred: Symbol,
        from_args: Vec<Expr>,
        extract_pred: Symbol,
        extract_args: Vec<Expr>,
        observations: Vec<Expr>,
    ) -> Lemma {
        let hyp = Asrt::star(vec![
            Asrt::pure(assuming),
            Asrt::Core {
                name: Symbol::new(LFT_TOKEN),
                ins: vec![kappa()],
                outs: vec![lv("q")],
            },
            Asrt::Guarded {
                name: from_pred,
                lft: kappa(),
                args: from_args,
            },
        ]);
        let mut concl_atoms = vec![
            Asrt::Guarded {
                name: extract_pred,
                lft: kappa(),
                args: extract_args,
            },
            Asrt::Core {
                name: Symbol::new(LFT_TOKEN),
                ins: vec![kappa()],
                outs: vec![lv("q")],
            },
        ];
        for obs in observations {
            concl_atoms.push(Asrt::Observation(obs));
        }
        let concl = Asrt::star(concl_atoms);
        let lemma = Lemma::new(name, params, hyp, concl).trusted();
        self.prog.add_lemma(lemma.clone());
        lemma
    }

    /// The `#[with_freeze_lemma]` generator (App. A): given a borrow
    /// predicate, produces a *frozen* variant where some existentials become
    /// parameters, plus a trusted lemma converting the former into the
    /// latter.
    pub fn freeze_lemma(
        &mut self,
        lemma_name: &str,
        source_pred: Symbol,
        frozen_pred: Pred,
        source_args: Vec<Expr>,
        frozen_args: Vec<Expr>,
        params: &[&str],
    ) -> Lemma {
        let frozen_name = frozen_pred.name;
        self.prog.add_pred(frozen_pred);
        let hyp = Asrt::Guarded {
            name: source_pred,
            lft: kappa(),
            args: source_args,
        };
        let concl = Asrt::Guarded {
            name: frozen_name,
            lft: kappa(),
            args: frozen_args,
        };
        let lemma = Lemma::new(lemma_name, params, hyp, concl).trusted();
        self.prog.add_lemma(lemma.clone());
        lemma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;
    use rust_ir::{builder::BodyBuilder, LayoutOracle, Operand, Program};

    fn ctx(mode: SpecMode) -> GilsoniteCtx {
        GilsoniteCtx::new(
            TypeRegistry::new(Program::new("t"), LayoutOracle::default()),
            mode,
        )
    }

    #[test]
    fn builtin_int_ownership_is_generated_once() {
        let mut g = ctx(SpecMode::FunctionalCorrectness);
        let a = g.own_pred(&Ty::i32());
        let b = g.own_pred(&Ty::i32());
        assert_eq!(a, b);
        assert!(g.prog.pred(a).is_some());
    }

    #[test]
    fn type_params_get_abstract_predicates() {
        let mut g = ctx(SpecMode::FunctionalCorrectness);
        let t = g.own_pred(&Ty::param("T"));
        assert!(g.prog.pred(t).unwrap().is_abstract);
    }

    #[test]
    fn option_ownership_has_two_disjuncts() {
        let mut g = ctx(SpecMode::FunctionalCorrectness);
        let p = g.own_pred(&Ty::option(Ty::i32()));
        assert_eq!(g.prog.pred(p).unwrap().definitions.len(), 2);
    }

    #[test]
    fn mutref_inner_pred_shape_depends_on_mode() {
        let mut fc = ctx(SpecMode::FunctionalCorrectness);
        let p = fc.mutref_inner_pred(&Ty::i32());
        assert_eq!(fc.prog.pred(p).unwrap().params.len(), 2);
        let mut ts = ctx(SpecMode::TypeSafety);
        let p = ts.mutref_inner_pred(&Ty::i32());
        assert_eq!(ts.prog.pred(p).unwrap().params.len(), 1);
    }

    #[test]
    fn fn_spec_for_mutref_param_has_token_and_observer() {
        let mut g = ctx(SpecMode::FunctionalCorrectness);
        let mut b = BodyBuilder::new("inc", vec![("x", Ty::mut_ref("'a", Ty::i32()))], Ty::Unit);
        b.ret_val(Operand::unit());
        let f = b.finish();
        let spec = g.fn_spec(
            &f,
            vec![Expr::lt(lv("x_cur"), Expr::Int(100))],
            vec![Expr::eq(lv("x_fin"), Expr::add(lv("x_cur"), Expr::Int(1)))],
        );
        let pre_atoms = spec.pre.atoms();
        assert!(pre_atoms.iter().any(|a| matches!(a, Asrt::Guarded { .. })));
        assert!(pre_atoms
            .iter()
            .any(|a| matches!(a, Asrt::Core { name, .. } if name.as_str() == VALUE_OBSERVER)));
        assert!(pre_atoms
            .iter()
            .any(|a| matches!(a, Asrt::Core { name, .. } if name.as_str() == LFT_TOKEN)));
        assert!(pre_atoms.iter().any(|a| matches!(a, Asrt::Observation(_))));
        assert_eq!(spec.posts.len(), 1);
    }

    #[test]
    fn show_safety_spec_has_no_observations() {
        let mut g = ctx(SpecMode::TypeSafety);
        let mut b = BodyBuilder::new("mk", vec![("x", Ty::i32())], Ty::i32());
        b.ret_val(Operand::local("x"));
        let f = b.finish();
        let spec = g.show_safety_spec(&f);
        assert!(!spec
            .pre
            .atoms()
            .iter()
            .any(|a| matches!(a, Asrt::Observation(_))));
    }
}
