//! The Gillian-Rust state model: σ = (h, ξ, γ, φ, χ).
//!
//! * `h` — the symbolic heap ([`crate::heap`], §3);
//! * `ξ` — the lifetime context (lifetime tokens, Fig. 3, §4.1);
//! * `γ` — the guarded-predicate context, handled generically by the engine
//!   ([`gillian_engine::Config::guarded`], §4.2);
//! * `φ` — the observation context (a secondary path condition, §5.2);
//! * `χ` — the prophecy context (value observers and prophecy controllers,
//!   §5.3).
//!
//! The state exposes *actions* (used by compiled code: alloc, load, store,
//! free, option destructuring, lifetime creation, ...) and *core predicates*
//! (typed points-to, uninit, slices, lifetime tokens, observations, value
//! observers and prophecy controllers), each with a consumer and a producer.

use crate::heap::{Heap, HeapError};
use crate::types::{Address, Types};
use gillian_engine::{
    ActionOk, ActionResult, ConsumeOk, ConsumeResult, ProduceOk, PureCtx, StateModel,
};
use gillian_solver::{simplify, Expr, SVar, Symbol};
use rust_ir::Ty;
use std::collections::BTreeMap;

// Core-predicate names.
pub const POINTS_TO: &str = "points_to";
pub const UNINIT: &str = "uninit";
pub const POINTS_TO_SLICE: &str = "points_to_slice";
pub const UNINIT_SLICE: &str = "uninit_slice";
pub const LFT_TOKEN: &str = gillian_engine::LFT_TOKEN;
pub const LFT_DEAD: &str = "lft_dead";
pub const OBSERVATION: &str = "observation";
pub const VALUE_OBSERVER: &str = "value_observer";
pub const PROPH_CONTROLLER: &str = "proph_controller";

/// The status of a lifetime in the lifetime context ξ.
#[derive(Clone, Debug, PartialEq)]
pub enum LftEntry {
    /// The token is owned with the given fraction.
    Alive(Expr),
    /// The lifetime has ended; `[†κ]` is persistent.
    Dead,
}

/// The lifetime context.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LifetimeCtx {
    entries: Vec<(Expr, LftEntry)>,
}

impl LifetimeCtx {
    fn find(&self, lft: &Expr, ctx: &PureCtx<'_>) -> Option<usize> {
        self.entries
            .iter()
            .position(|(l, _)| ctx.must_equal(l, lft))
    }
}

/// One entry of the prophecy context χ: the current value and whether the
/// value observer / prophecy controller resources are present in the state.
#[derive(Clone, Debug, PartialEq)]
pub struct ProphEntry {
    pub value: Expr,
    pub observer: bool,
    pub controller: bool,
}

/// The Gillian-Rust symbolic state.
#[derive(Clone, Debug)]
pub struct GRState {
    pub types: Types,
    pub heap: Heap,
    pub lifetimes: LifetimeCtx,
    /// The observation context φ: a conjunction of pure facts about prophecy
    /// (and ordinary symbolic) variables.
    pub observations: Vec<Expr>,
    /// The prophecy context χ, keyed by the prophecy variable.
    pub prophecies: BTreeMap<SVar, ProphEntry>,
}

impl GRState {
    /// Creates a state for the given type registry.
    pub fn with_types(types: Types) -> GRState {
        GRState {
            types,
            heap: Heap::new(),
            lifetimes: LifetimeCtx::default(),
            observations: Vec::new(),
            prophecies: BTreeMap::new(),
        }
    }

    fn resolve_ty(&self, e: &Expr) -> Result<Ty, String> {
        self.types
            .resolve_expr(e)
            .ok_or_else(|| format!("not a type identifier: {e}"))
    }

    fn resolve_addr(&self, e: &Expr, ctx: &PureCtx<'_>) -> Result<Address, HeapError> {
        self.heap
            .resolve_ptr(e, ctx, &self.types)
            .ok_or_else(|| HeapError::Missing {
                msg: format!("pointer {e} has no known allocation"),
                hint: e.clone(),
            })
    }

    fn proph_var(e: &Expr) -> Option<SVar> {
        match simplify(e) {
            Expr::Var(v) => Some(v),
            _ => None,
        }
    }

    fn ok_action(&self, heap: Heap, value: Expr, facts: Vec<Expr>) -> ActionResult<GRState> {
        let mut s = self.clone();
        s.heap = heap;
        ActionResult::Ok(vec![ActionOk {
            state: s,
            value,
            facts,
        }])
    }
}

impl PartialEq for GRState {
    fn eq(&self, other: &Self) -> bool {
        self.heap == other.heap
            && self.lifetimes == other.lifetimes
            && self.observations == other.observations
            && self.prophecies == other.prophecies
    }
}

/// Type-range facts for a value loaded at an integer type: a well-typed
/// heap only holds inhabitants, so `usize` loads learn `0 <= v <= MAX` —
/// exactly what overflow/underflow range checks on field reads need (e.g.
/// `pop_front`'s `self.len - 1`, where nothing else bounds the field).
fn int_range_facts(ty: &Ty, v: &Expr) -> Vec<Expr> {
    match ty {
        Ty::Int(ity) if !matches!(v, Expr::Int(_)) => vec![
            Expr::le(Expr::Int(ity.min()), v.clone()),
            Expr::le(v.clone(), Expr::Int(ity.max())),
        ],
        _ => vec![],
    }
}

fn heap_err_to_action(e: HeapError) -> ActionResult<GRState> {
    match e {
        HeapError::Missing { msg, hint } => ActionResult::Missing {
            msg,
            hint: vec![hint],
        },
        HeapError::Error(msg) => ActionResult::Error(msg),
        HeapError::Vanish => ActionResult::Ok(vec![]),
    }
}

fn heap_err_to_consume(e: HeapError) -> ConsumeResult<GRState> {
    match e {
        HeapError::Missing { msg, hint } => ConsumeResult::Missing {
            msg,
            hint: vec![hint],
        },
        HeapError::Error(msg) => ConsumeResult::Error(msg),
        HeapError::Vanish => ConsumeResult::Ok(vec![]),
    }
}

impl StateModel for GRState {
    fn empty() -> Self {
        // An "empty" state still needs a type registry; verification drivers
        // always construct states through `with_types`, and the engine only
        // calls `empty()` for `Config::new()`, whose state is immediately
        // replaced. A registry over an empty program keeps this safe.
        GRState::with_types(crate::types::TypeRegistry::new(
            rust_ir::Program::new("empty"),
            rust_ir::LayoutOracle::default(),
        ))
    }

    fn exec_action(
        &self,
        name: Symbol,
        args: &[Expr],
        ctx: &mut PureCtx<'_>,
    ) -> ActionResult<Self> {
        match name.as_str() {
            // alloc(ty) -> fresh pointer
            "alloc" => {
                let ty = match self.resolve_ty(&args[0]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let mut heap = self.heap.clone();
                let addr = heap.alloc(ty);
                self.ok_action(heap, addr.to_expr(), vec![])
            }
            // alloc_array(elem_ty, count) -> fresh pointer
            "alloc_array" => {
                let ty = match self.resolve_ty(&args[0]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let mut heap = self.heap.clone();
                let addr = heap.alloc_array(ty, args[1].clone());
                self.ok_action(heap, addr.to_expr(), vec![])
            }
            // free(ptr, ty)
            "free" => {
                let addr = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.free(&addr, args[0].clone()) {
                    Ok(()) => self.ok_action(heap, Expr::Unit, vec![]),
                    Err(e) => heap_err_to_action(e),
                }
            }
            // load(ptr, ty) -> value
            "load" => {
                let ty = match self.resolve_ty(&args[1]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let addr = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.load(&addr, &ty, &self.types, ctx) {
                    Ok(v) => {
                        let facts = int_range_facts(&ty, &v);
                        self.ok_action(heap, v, facts)
                    }
                    Err(e) => heap_err_to_action(e),
                }
            }
            // load_move(ptr, ty) -> value, deinitialising the source
            "load_move" => {
                let ty = match self.resolve_ty(&args[1]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let addr = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.move_out(&addr, &ty, &self.types, ctx) {
                    Ok(v) => {
                        let facts = int_range_facts(&ty, &v);
                        self.ok_action(heap, v, facts)
                    }
                    Err(e) => heap_err_to_action(e),
                }
            }
            // store(ptr, ty, value)
            "store" => {
                let ty = match self.resolve_ty(&args[1]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let addr = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.store(&addr, &ty, args[2].clone(), &self.types, ctx) {
                    Ok(()) => self.ok_action(heap, Expr::Unit, vec![]),
                    Err(e) => heap_err_to_action(e),
                }
            }
            // retype_array(ptr, new_elem_ty, new_count)
            "retype_array" => {
                let ty = match self.resolve_ty(&args[1]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let addr = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.retype_array(&addr, ty, args[2].clone(), args[0].clone()) {
                    Ok(()) => self.ok_action(heap, args[0].clone(), vec![]),
                    Err(e) => heap_err_to_action(e),
                }
            }
            // copy_slice(src, dst, elem_ty, count)
            "copy_slice" => {
                let ty = match self.resolve_ty(&args[2]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let src = match self.resolve_addr(&args[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let dst = match self.resolve_addr(&args[1], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_action(e),
                };
                let mut heap = self.heap.clone();
                match heap.copy_slice(&src, &dst, &ty, &args[3], &self.types, ctx) {
                    Ok(()) => self.ok_action(heap, Expr::Unit, vec![]),
                    Err(e) => heap_err_to_action(e),
                }
            }
            // unwrap_option(v) -> payload, assuming v == Some(payload)
            "unwrap_option" => {
                let payload = ctx.fresh();
                let fact = Expr::eq(args[0].clone(), Expr::some(payload.clone()));
                ActionResult::Ok(vec![ActionOk {
                    state: self.clone(),
                    value: payload,
                    facts: vec![fact],
                }])
            }
            // destruct_struct(v, ty) -> the same value, assuming it has
            // constructor form (used for pure field access).
            "destruct_struct" => {
                let ty = match self.resolve_ty(&args[1]) {
                    Ok(t) => t,
                    Err(e) => return ActionResult::Error(e),
                };
                let Some((tag, fields)) = self.types.struct_info(&ty) else {
                    return ActionResult::Error(format!("{ty} is not a struct type"));
                };
                let field_vals: Vec<Expr> = (0..fields.len()).map(|_| ctx.fresh()).collect();
                let ctor = Expr::ctor(&format!("struct::{tag}"), field_vals);
                let fact = Expr::eq(args[0].clone(), ctor.clone());
                ActionResult::Ok(vec![ActionOk {
                    state: self.clone(),
                    value: ctor,
                    facts: vec![fact],
                }])
            }
            // new_lft() -> a fresh, alive lifetime with full token ownership
            "new_lft" => {
                let lft = ctx.fresh();
                let mut s = self.clone();
                s.lifetimes
                    .entries
                    .push((lft.clone(), LftEntry::Alive(Expr::Int(1))));
                ActionResult::Ok(vec![ActionOk {
                    state: s,
                    value: lft,
                    facts: vec![],
                }])
            }
            // kill_lft(κ): requires full ownership of the token
            "kill_lft" => {
                let mut s = self.clone();
                match s.lifetimes.find(&args[0], ctx) {
                    Some(idx) => {
                        s.lifetimes.entries[idx].1 = LftEntry::Dead;
                        ActionResult::Ok(vec![ActionOk {
                            state: s,
                            value: Expr::Unit,
                            facts: vec![],
                        }])
                    }
                    None => ActionResult::Missing {
                        msg: format!("no lifetime token for {}", args[0]),
                        hint: vec![args[0].clone()],
                    },
                }
            }
            other => ActionResult::Error(format!("unknown action {other}")),
        }
    }

    fn consume_core(
        &self,
        name: Symbol,
        ins: &[Expr],
        ctx: &mut PureCtx<'_>,
    ) -> ConsumeResult<Self> {
        match name.as_str() {
            POINTS_TO => {
                let ty = match self.resolve_ty(&ins[1]) {
                    Ok(t) => t,
                    Err(e) => return ConsumeResult::Error(e),
                };
                let addr = match self.resolve_addr(&ins[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_consume(e),
                };
                let mut heap = self.heap.clone();
                match heap.take(&addr, &ty, &self.types, ctx) {
                    Ok(v) => {
                        let mut s = self.clone();
                        s.heap = heap;
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![v],
                            facts: vec![],
                        }])
                    }
                    Err(e) => heap_err_to_consume(e),
                }
            }
            UNINIT => {
                let ty = match self.resolve_ty(&ins[1]) {
                    Ok(t) => t,
                    Err(e) => return ConsumeResult::Error(e),
                };
                let addr = match self.resolve_addr(&ins[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_consume(e),
                };
                let mut heap = self.heap.clone();
                match heap.take_uninit(&addr, &ty, &self.types, ctx) {
                    Ok(()) => {
                        let mut s = self.clone();
                        s.heap = heap;
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![],
                            facts: vec![],
                        }])
                    }
                    Err(e) => heap_err_to_consume(e),
                }
            }
            POINTS_TO_SLICE => {
                let ty = match self.resolve_ty(&ins[1]) {
                    Ok(t) => t,
                    Err(e) => return ConsumeResult::Error(e),
                };
                let addr = match self.resolve_addr(&ins[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_consume(e),
                };
                let mut heap = self.heap.clone();
                match heap.take_slice(&addr, &ty, &ins[2], &self.types, ctx) {
                    Ok(vals) => {
                        let mut s = self.clone();
                        s.heap = heap;
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![vals],
                            facts: vec![],
                        }])
                    }
                    Err(e) => heap_err_to_consume(e),
                }
            }
            UNINIT_SLICE => {
                let ty = match self.resolve_ty(&ins[1]) {
                    Ok(t) => t,
                    Err(e) => return ConsumeResult::Error(e),
                };
                let addr = match self.resolve_addr(&ins[0], ctx) {
                    Ok(a) => a,
                    Err(e) => return heap_err_to_consume(e),
                };
                let mut heap = self.heap.clone();
                match heap.take_uninit_slice(&addr, &ty, &ins[2], &self.types, ctx) {
                    Ok(()) => {
                        let mut s = self.clone();
                        s.heap = heap;
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![],
                            facts: vec![],
                        }])
                    }
                    Err(e) => heap_err_to_consume(e),
                }
            }
            LFT_TOKEN => {
                // Lft-Consume: take the owned fraction of an alive lifetime.
                match self.lifetimes.find(&ins[0], ctx) {
                    Some(idx) => match self.lifetimes.entries[idx].1.clone() {
                        LftEntry::Alive(q) => {
                            let mut s = self.clone();
                            s.lifetimes.entries.remove(idx);
                            ConsumeResult::Ok(vec![ConsumeOk {
                                state: s,
                                outs: vec![q],
                                facts: vec![],
                            }])
                        }
                        LftEntry::Dead => {
                            ConsumeResult::Error(format!("lifetime {} has already ended", ins[0]))
                        }
                    },
                    None => ConsumeResult::Missing {
                        msg: format!("no alive token for lifetime {}", ins[0]),
                        hint: vec![ins[0].clone()],
                    },
                }
            }
            LFT_DEAD => {
                // Lft-Consume-Exp: the dead token is persistent, so consuming
                // it does not modify the context.
                match self.lifetimes.find(&ins[0], ctx) {
                    Some(idx) if self.lifetimes.entries[idx].1 == LftEntry::Dead => {
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: self.clone(),
                            outs: vec![],
                            facts: vec![],
                        }])
                    }
                    _ => ConsumeResult::Missing {
                        msg: format!("lifetime {} is not known to be dead", ins[0]),
                        hint: vec![ins[0].clone()],
                    },
                }
            }
            OBSERVATION => {
                // Observation-Consume: π ∧ φ must entail the observation. The
                // engine asserts observations into the path as they are
                // produced; re-asserting φ in a transient scope keeps the
                // check correct when the state model is driven directly.
                if ctx.entails_under(&self.observations, &ins[0]) {
                    ConsumeResult::Ok(vec![ConsumeOk {
                        state: self.clone(),
                        outs: vec![],
                        facts: vec![],
                    }])
                } else {
                    // The entailment may only be missing pure facts that are
                    // still hidden inside folded (pure) ownership predicates,
                    // e.g. `own_usize(a, #a_repr)` holding `a == #a_repr`.
                    // Hand the observation back as the recovery hint so the
                    // engine unfolds the related predicates and retries.
                    ConsumeResult::Missing {
                        msg: format!("observation not entailed: {}", ins[0]),
                        hint: vec![ins[0].clone()],
                    }
                }
            }
            VALUE_OBSERVER => {
                let Some(x) = Self::proph_var(&ins[0]) else {
                    return ConsumeResult::Error(format!(
                        "value observer of a non-variable prophecy {}",
                        ins[0]
                    ));
                };
                match self.prophecies.get(&x) {
                    Some(entry) if entry.observer => {
                        let mut s = self.clone();
                        let e = s.prophecies.get_mut(&x).unwrap();
                        e.observer = false;
                        let value = entry.value.clone();
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![value],
                            facts: vec![],
                        }])
                    }
                    _ => ConsumeResult::Missing {
                        msg: format!("no value observer for prophecy {}", ins[0]),
                        hint: vec![ins[0].clone()],
                    },
                }
            }
            PROPH_CONTROLLER => {
                let Some(x) = Self::proph_var(&ins[0]) else {
                    return ConsumeResult::Error(format!(
                        "prophecy controller of a non-variable prophecy {}",
                        ins[0]
                    ));
                };
                match self.prophecies.get(&x) {
                    Some(entry) if entry.controller => {
                        let mut s = self.clone();
                        let e = s.prophecies.get_mut(&x).unwrap();
                        e.controller = false;
                        let value = entry.value.clone();
                        ConsumeResult::Ok(vec![ConsumeOk {
                            state: s,
                            outs: vec![value],
                            facts: vec![],
                        }])
                    }
                    _ => ConsumeResult::Missing {
                        msg: format!("no prophecy controller for prophecy {}", ins[0]),
                        hint: vec![ins[0].clone()],
                    },
                }
            }
            other => ConsumeResult::Error(format!("unknown core predicate {other}")),
        }
    }

    fn produce_core(
        &self,
        name: Symbol,
        ins: &[Expr],
        outs: &[Expr],
        ctx: &mut PureCtx<'_>,
    ) -> Vec<ProduceOk<Self>> {
        let one = |state: GRState, facts: Vec<Expr>| vec![ProduceOk { state, facts }];
        match name.as_str() {
            POINTS_TO => {
                let Ok(ty) = self.resolve_ty(&ins[1]) else {
                    return vec![];
                };
                let mut s = self.clone();
                let (addr, facts) = s.heap.resolve_ptr_or_bind(&ins[0], ctx, &self.types);
                let value = outs.first().cloned().unwrap_or_else(|| ctx.fresh());
                match s.heap.give(&addr, &ty, value, &self.types, ctx) {
                    Ok(()) => one(s, facts),
                    Err(_) => vec![],
                }
            }
            UNINIT => {
                let Ok(ty) = self.resolve_ty(&ins[1]) else {
                    return vec![];
                };
                let mut s = self.clone();
                let (addr, facts) = s.heap.resolve_ptr_or_bind(&ins[0], ctx, &self.types);
                match s.heap.give_uninit(&addr, &ty, &self.types, ctx) {
                    Ok(()) => one(s, facts),
                    Err(_) => vec![],
                }
            }
            POINTS_TO_SLICE => {
                let Ok(ty) = self.resolve_ty(&ins[1]) else {
                    return vec![];
                };
                let mut s = self.clone();
                let (addr, mut facts) = s.heap.resolve_ptr_or_bind(&ins[0], ctx, &self.types);
                let vals = outs.first().cloned().unwrap_or_else(|| ctx.fresh());
                facts.push(Expr::eq(Expr::seq_len(vals.clone()), ins[2].clone()));
                match s
                    .heap
                    .give_slice(&addr, &ty, &ins[2], vals, &self.types, ctx)
                {
                    Ok(()) => one(s, facts),
                    Err(_) => vec![],
                }
            }
            UNINIT_SLICE => {
                let Ok(ty) = self.resolve_ty(&ins[1]) else {
                    return vec![];
                };
                let mut s = self.clone();
                let (addr, facts) = s.heap.resolve_ptr_or_bind(&ins[0], ctx, &self.types);
                match s
                    .heap
                    .give_uninit_slice(&addr, &ty, &ins[2], &self.types, ctx)
                {
                    Ok(()) => one(s, facts),
                    Err(_) => vec![],
                }
            }
            LFT_TOKEN => {
                // Lft-Produce-Alive-Add / Lft-Produce-Own-End (Fig. 3).
                let frac = outs.first().cloned().unwrap_or(Expr::Int(1));
                let mut s = self.clone();
                match s.lifetimes.find(&ins[0], ctx) {
                    Some(idx) => match s.lifetimes.entries[idx].1.clone() {
                        LftEntry::Dead => vec![], // vanishes
                        LftEntry::Alive(q) => {
                            let combined = simplify(&Expr::add(q, frac));
                            s.lifetimes.entries[idx].1 = LftEntry::Alive(combined.clone());
                            one(s, vec![Expr::le(combined, Expr::Int(1))])
                        }
                    },
                    None => {
                        s.lifetimes
                            .entries
                            .push((ins[0].clone(), LftEntry::Alive(frac.clone())));
                        one(
                            s,
                            vec![
                                Expr::lt(Expr::Int(0), frac.clone()),
                                Expr::le(frac, Expr::Int(1)),
                            ],
                        )
                    }
                }
            }
            LFT_DEAD => {
                let mut s = self.clone();
                match s.lifetimes.find(&ins[0], ctx) {
                    Some(idx) => match s.lifetimes.entries[idx].1 {
                        LftEntry::Alive(_) => vec![], // [κ]_q ∗ [†κ] ⇒ False
                        LftEntry::Dead => one(s, vec![]),
                    },
                    None => {
                        s.lifetimes.entries.push((ins[0].clone(), LftEntry::Dead));
                        one(s, vec![])
                    }
                }
            }
            OBSERVATION => {
                // Observation-Produce: keep π ∧ φ satisfiable, otherwise the
                // production vanishes. The observation is returned as a fact
                // so the engine asserts φ into the solver context alongside
                // the path condition (§5.2: φ is a secondary path condition).
                if !ctx.possibly_under(&self.observations, &ins[0]) {
                    vec![]
                } else {
                    let mut s = self.clone();
                    s.observations.push(ins[0].clone());
                    one(s, vec![ins[0].clone()])
                }
            }
            VALUE_OBSERVER => {
                let Some(x) = Self::proph_var(&ins[0]) else {
                    return vec![];
                };
                let value = outs.first().cloned().unwrap_or_else(|| ctx.fresh());
                let mut s = self.clone();
                match s.prophecies.get_mut(&x) {
                    None => {
                        s.prophecies.insert(
                            x,
                            ProphEntry {
                                value,
                                observer: true,
                                controller: false,
                            },
                        );
                        one(s, vec![])
                    }
                    // Neither half is owned: the tracked value is stale and
                    // may be re-bound (this is what makes Mut-Update work).
                    Some(entry) if !entry.observer && !entry.controller => {
                        entry.observer = true;
                        entry.value = value;
                        one(s, vec![])
                    }
                    // The controller is present: Mut-Agree forces equality.
                    Some(entry) if !entry.observer => {
                        entry.observer = true;
                        let fact = Expr::eq(value, entry.value.clone());
                        one(s, vec![fact])
                    }
                    Some(_) => vec![], // duplicated exclusive resource
                }
            }
            PROPH_CONTROLLER => {
                let Some(x) = Self::proph_var(&ins[0]) else {
                    return vec![];
                };
                let value = outs.first().cloned().unwrap_or_else(|| ctx.fresh());
                let mut s = self.clone();
                match s.prophecies.get_mut(&x) {
                    None => {
                        s.prophecies.insert(
                            x,
                            ProphEntry {
                                value,
                                observer: false,
                                controller: true,
                            },
                        );
                        one(s, vec![])
                    }
                    // Neither half is owned: the tracked value may be re-bound.
                    Some(entry) if !entry.observer && !entry.controller => {
                        entry.controller = true;
                        entry.value = value;
                        one(s, vec![])
                    }
                    // The observer is present: Mut-Agree forces equality.
                    Some(entry) if !entry.controller => {
                        entry.controller = true;
                        let fact = Expr::eq(value, entry.value.clone());
                        one(s, vec![fact])
                    }
                    Some(_) => vec![],
                }
            }
            _ => vec![],
        }
    }

    fn core_arity(&self, name: Symbol) -> Option<(usize, usize)> {
        match name.as_str() {
            POINTS_TO => Some((2, 1)),
            UNINIT => Some((2, 0)),
            POINTS_TO_SLICE => Some((3, 1)),
            UNINIT_SLICE => Some((3, 0)),
            LFT_TOKEN => Some((1, 1)),
            LFT_DEAD => Some((1, 0)),
            OBSERVATION => Some((1, 0)),
            VALUE_OBSERVER | PROPH_CONTROLLER => Some((1, 1)),
            _ => None,
        }
    }

    fn is_empty_heap(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;
    use gillian_solver::Solver;
    use rust_ir::{LayoutOracle, Program};

    fn state() -> GRState {
        GRState::with_types(TypeRegistry::new(
            Program::new("t"),
            LayoutOracle::default(),
        ))
    }

    fn run<R>(f: impl FnOnce(&GRState, &mut PureCtx<'_>) -> R) -> R {
        let solver = Solver::new();
        let s = state();
        gillian_engine::with_pure_ctx(&solver, |ctx| f(&s, ctx))
    }

    #[test]
    fn alloc_store_load_via_actions() {
        run(|s, ctx| {
            let usize_ty = s.types.intern(&Ty::usize()).to_expr();
            let ActionResult::Ok(outs) =
                s.exec_action(Symbol::new("alloc"), &[usize_ty.clone()], ctx)
            else {
                panic!("alloc failed")
            };
            let ptr = outs[0].value.clone();
            let s1 = outs[0].state.clone();
            let ActionResult::Ok(outs) = s1.exec_action(
                Symbol::new("store"),
                &[ptr.clone(), usize_ty.clone(), Expr::Int(5)],
                ctx,
            ) else {
                panic!("store failed")
            };
            let s2 = outs[0].state.clone();
            let ActionResult::Ok(outs) = s2.exec_action(Symbol::new("load"), &[ptr, usize_ty], ctx)
            else {
                panic!("load failed")
            };
            assert_eq!(outs[0].value, Expr::Int(5));
        });
    }

    #[test]
    fn load_of_unknown_pointer_is_missing_with_hint() {
        run(|s, ctx| {
            let usize_ty = s.types.intern(&Ty::usize()).to_expr();
            let p = ctx.fresh();
            match s.exec_action(Symbol::new("load"), &[p.clone(), usize_ty], ctx) {
                ActionResult::Missing { hint, .. } => assert_eq!(hint, vec![p]),
                other => panic!("expected missing, got {other:?}"),
            }
        });
    }

    #[test]
    fn lifetime_token_rules() {
        run(|s, ctx| {
            let kappa = ctx.fresh();
            // Produce a full token, then consume it back.
            let produced = s.produce_core(
                Symbol::new(LFT_TOKEN),
                &[kappa.clone()],
                &[Expr::Int(1)],
                ctx,
            );
            assert_eq!(produced.len(), 1);
            let s1 = produced[0].state.clone();
            match s1.consume_core(Symbol::new(LFT_TOKEN), &[kappa.clone()], ctx) {
                ConsumeResult::Ok(outs) => assert_eq!(outs[0].outs, vec![Expr::Int(1)]),
                other => panic!("expected ok, got {other:?}"),
            }
            // Producing an alive token for a dead lifetime vanishes.
            let dead = s.produce_core(Symbol::new(LFT_DEAD), &[kappa.clone()], &[], ctx);
            let s2 = dead[0].state.clone();
            let vanished = s2.produce_core(Symbol::new(LFT_TOKEN), &[kappa], &[Expr::Int(1)], ctx);
            assert!(vanished.is_empty());
        });
    }

    #[test]
    fn observation_produce_and_consume() {
        run(|s, ctx| {
            let x = ctx.fresh();
            let obs = Expr::lt(x.clone(), Expr::Int(10));
            let produced = s.produce_core(Symbol::new(OBSERVATION), &[obs.clone()], &[], ctx);
            assert_eq!(produced.len(), 1);
            let s1 = produced[0].state.clone();
            // Entailed observation is consumable.
            match s1.consume_core(
                Symbol::new(OBSERVATION),
                &[Expr::lt(x.clone(), Expr::Int(20))],
                ctx,
            ) {
                ConsumeResult::Ok(_) => {}
                other => panic!("expected ok, got {other:?}"),
            }
            // Contradictory observation production vanishes.
            let vanished = s1.produce_core(
                Symbol::new(OBSERVATION),
                &[Expr::lt(Expr::Int(20), x)],
                &[],
                ctx,
            );
            assert!(vanished.is_empty());
        });
    }

    #[test]
    fn prophecy_observer_controller_agree() {
        run(|s, ctx| {
            let x = match ctx.fresh() {
                Expr::Var(v) => v,
                _ => unreachable!(),
            };
            let a = ctx.fresh();
            let b = ctx.fresh();
            // Produce the observer with value a, then the controller with
            // value b: Mut-Agree forces a == b.
            let p1 = s.produce_core(
                Symbol::new(VALUE_OBSERVER),
                &[Expr::Var(x)],
                &[a.clone()],
                ctx,
            );
            let s1 = p1[0].state.clone();
            let p2 = s1.produce_core(
                Symbol::new(PROPH_CONTROLLER),
                &[Expr::Var(x)],
                &[b.clone()],
                ctx,
            );
            assert_eq!(p2.len(), 1);
            assert!(p2[0].facts.contains(&Expr::eq(b, a)));
        });
    }

    #[test]
    fn unwrap_option_learns_some() {
        run(|s, ctx| {
            let v = ctx.fresh();
            match s.exec_action(Symbol::new("unwrap_option"), &[v.clone()], ctx) {
                ActionResult::Ok(outs) => {
                    assert_eq!(outs.len(), 1);
                    let fact = &outs[0].facts[0];
                    assert!(
                        matches!(fact, Expr::BinOp(gillian_solver::BinOp::Eq, a, _) if a.as_ref() == &v)
                    );
                }
                other => panic!("expected ok, got {other:?}"),
            }
        });
    }
}
