//! # gillian-rust
//!
//! The paper's primary contribution: a semi-automated separation-logic
//! verifier for unsafe Rust built as an instantiation of the Gillian engine.
//!
//! The crate provides:
//!
//! * the symbolic Rust heap with structural and laid-out nodes and
//!   layout-independent addresses ([`heap`], [`types`], §3);
//! * the full Gillian-Rust state model σ = (h, ξ, γ, φ, χ): lifetime tokens,
//!   observations and parametric prophecies ([`state`], §4–5);
//! * the mini-MIR → GIL compiler ([`compile`]);
//! * the Gilsonite specification layer: the `Ownable` registry, the
//!   `#[show_safety]` / `#[specification]` spec schemas and the borrow /
//!   extraction / freezing machinery ([`gilsonite`], §4.2–4.3, App. A/B);
//! * the semi-automatic tactics `mutref_auto_resolve` and
//!   `prophecy_auto_update` ([`tactics`], §5.3);
//! * a top-level verification driver ([`verifier`]) producing the
//!   per-function reports used to regenerate Table 1.

pub mod compile;
pub mod gilsonite;
pub mod heap;
pub mod state;
pub mod tactics;
pub mod types;
pub mod verifier;

pub use gilsonite::{GilsoniteCtx, Ownable, SpecMode};
pub use state::GRState;
pub use types::{Address, ProjElem, TyId, TypeRegistry, Types};
pub use verifier::{CaseReport, Verifier, VerifierOptions, VerifyDiagnostic};
