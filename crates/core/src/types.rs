//! Type registry and the symbolic encoding of addresses.
//!
//! Addresses are layout-independent (§3.1): a pointer value is a pair of an
//! object location and a *projection* — a sequence of projection elements
//! (`.T i` field selections and `+T e` array offsets). The registry interns
//! `rust-ir` types so that they can be mentioned inside expressions as plain
//! integers, and answers size queries (symbolically for generic types).

use gillian_solver::Expr;
use rust_ir::{AdtKind, LayoutOracle, Program, Ty};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// An interned type identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyId(pub u32);

impl TyId {
    /// The identifier as an expression (how types are mentioned in GIL).
    pub fn to_expr(self) -> Expr {
        Expr::Int(self.0 as i128)
    }
}

/// The type registry shared by the heap, the compiler and the Gilsonite layer.
/// Interning is behind a read-mostly lock so that one registry can be shared
/// across the worker threads of a parallel verification batch.
#[derive(Debug)]
pub struct TypeRegistry {
    pub program: Program,
    pub layout: LayoutOracle,
    types: RwLock<Vec<Ty>>,
    map: RwLock<HashMap<Ty, TyId>>,
}

/// A shared handle to the registry.
pub type Types = Arc<TypeRegistry>;

impl TypeRegistry {
    /// Creates a registry for a program.
    pub fn new(program: Program, layout: LayoutOracle) -> Types {
        Arc::new(TypeRegistry {
            program,
            layout,
            types: RwLock::new(Vec::new()),
            map: RwLock::new(HashMap::new()),
        })
    }

    /// Interns a type.
    pub fn intern(&self, ty: &Ty) -> TyId {
        if let Some(id) = self.map.read().unwrap().get(ty) {
            return *id;
        }
        let mut types = self.types.write().unwrap();
        let mut map = self.map.write().unwrap();
        // Another thread may have interned the type between the read probe
        // and taking the write locks.
        if let Some(id) = map.get(ty) {
            return *id;
        }
        let id = TyId(types.len() as u32);
        types.push(ty.clone());
        map.insert(ty.clone(), id);
        id
    }

    /// Recovers a type from its identifier.
    pub fn resolve(&self, id: TyId) -> Ty {
        self.types.read().unwrap()[id.0 as usize].clone()
    }

    /// Recovers a type from an expression produced by [`TyId::to_expr`].
    pub fn resolve_expr(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(i) if *i >= 0 && (*i as usize) < self.types.read().unwrap().len() => {
                Some(self.resolve(TyId(*i as u32)))
            }
            _ => None,
        }
    }

    /// The size of a type as an expression: a literal when statically known,
    /// a symbolic `size_of(ty)` application otherwise (generic types).
    pub fn size_expr(&self, ty: &Ty) -> Expr {
        match self.layout.size_of(ty, &self.program) {
            Some(s) => Expr::Int(s as i128),
            None => Expr::app("size_of", vec![self.intern(ty).to_expr()]),
        }
    }

    /// Number of fields of a struct type (used for destructuring symbolic
    /// struct values in the heap), together with its constructor tag.
    pub fn struct_info(&self, ty: &Ty) -> Option<(String, Vec<Ty>)> {
        match ty {
            Ty::Adt(name, args) => {
                let def = self.program.adt(name)?;
                match &def.kind {
                    AdtKind::Struct { fields } => {
                        let tys = (0..fields.len())
                            .map(|i| def.field_ty(i, args).unwrap())
                            .collect();
                        Some((name.clone(), tys))
                    }
                    AdtKind::Enum { .. } => None,
                }
            }
            Ty::Tuple(items) => Some(("tuple".to_owned(), items.clone())),
            _ => None,
        }
    }

    /// The constructor tag used for values of a struct type.
    pub fn ctor_tag(&self, ty: &Ty) -> Option<String> {
        self.struct_info(ty)
            .map(|(tag, _)| format!("struct::{tag}"))
    }
}

// ---------------------------------------------------------------------------
// Pointer encoding
// ---------------------------------------------------------------------------

/// Constructor tag for pointer values: `ptr(loc, projections)`.
pub const PTR_TAG: &str = "ptr";
/// Constructor tag for a field projection element: `proj_field(ty, idx)`.
pub const PROJ_FIELD: &str = "proj_field";
/// Constructor tag for an index projection element: `proj_index(ty, offset)`.
pub const PROJ_INDEX: &str = "proj_index";
/// Wrapper for not-yet-resolved pointer arithmetic: `ptr_offset(p, ty, n)`.
pub const PTR_OFFSET: &str = "ptr_offset";
/// Wrapper for not-yet-resolved field addressing: `ptr_field(p, ty, idx)`.
pub const PTR_FIELD: &str = "ptr_field";

/// A projection element.
#[derive(Clone, Debug, PartialEq)]
pub enum ProjElem {
    /// The `i`-th field of a struct of type `ty`.
    Field(TyId, usize),
    /// An offset of `e` elements of type `ty`.
    Index(TyId, Expr),
}

impl ProjElem {
    pub fn to_expr(&self) -> Expr {
        match self {
            ProjElem::Field(ty, idx) => {
                Expr::ctor(PROJ_FIELD, vec![ty.to_expr(), Expr::Int(*idx as i128)])
            }
            ProjElem::Index(ty, e) => Expr::ctor(PROJ_INDEX, vec![ty.to_expr(), e.clone()]),
        }
    }

    pub fn from_expr(e: &Expr) -> Option<ProjElem> {
        match e {
            Expr::Ctor(tag, args) if tag.as_str() == PROJ_FIELD && args.len() == 2 => {
                let ty = TyId(args[0].as_int()? as u32);
                let idx = args[1].as_int()? as usize;
                Some(ProjElem::Field(ty, idx))
            }
            Expr::Ctor(tag, args) if tag.as_str() == PROJ_INDEX && args.len() == 2 => {
                let ty = TyId(args[0].as_int()? as u32);
                Some(ProjElem::Index(ty, args[1].clone()))
            }
            _ => None,
        }
    }
}

/// A resolved address: an object location plus a projection.
#[derive(Clone, Debug, PartialEq)]
pub struct Address {
    /// The object location (always a concrete `Expr::Loc` once resolved).
    pub loc: u64,
    /// The projection from the base of the object.
    pub proj: Vec<ProjElem>,
}

impl Address {
    /// Builds the canonical pointer expression for this address.
    pub fn to_expr(&self) -> Expr {
        Expr::ctor(
            PTR_TAG,
            vec![
                Expr::Loc(self.loc),
                Expr::SeqLit(self.proj.iter().map(|p| p.to_expr()).collect()),
            ],
        )
    }

    /// Parses a canonical pointer expression.
    pub fn from_expr(e: &Expr) -> Option<Address> {
        match e {
            Expr::Ctor(tag, args) if tag.as_str() == PTR_TAG && args.len() == 2 => {
                let loc = match &args[0] {
                    Expr::Loc(l) => *l,
                    _ => return None,
                };
                let proj = match &args[1] {
                    Expr::SeqLit(items) => items
                        .iter()
                        .map(ProjElem::from_expr)
                        .collect::<Option<Vec<_>>>()?,
                    _ => return None,
                };
                Some(Address { loc, proj })
            }
            _ => None,
        }
    }

    /// A fresh base address for a new allocation.
    pub fn base(loc: u64) -> Address {
        Address { loc, proj: vec![] }
    }

    /// Extends the address with a field projection.
    pub fn with_field(mut self, ty: TyId, idx: usize) -> Address {
        self.proj.push(ProjElem::Field(ty, idx));
        self
    }

    /// Extends the address with an index projection.
    pub fn with_index(mut self, ty: TyId, offset: Expr) -> Address {
        self.proj.push(ProjElem::Index(ty, offset));
        self
    }
}

/// Builds a `ptr_field` wrapper (resolved lazily by the heap).
pub fn ptr_field(base: Expr, ty: TyId, idx: usize) -> Expr {
    Expr::ctor(PTR_FIELD, vec![base, ty.to_expr(), Expr::Int(idx as i128)])
}

/// Builds a `ptr_offset` wrapper (resolved lazily by the heap).
pub fn ptr_offset(base: Expr, ty: TyId, count: Expr) -> Expr {
    Expr::ctor(PTR_OFFSET, vec![base, ty.to_expr(), count])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rust_ir::{AdtDef, LayoutOracle, Program};

    fn registry() -> Types {
        let mut p = Program::new("t");
        p.add_adt(AdtDef::strukt(
            "Node",
            &["T"],
            vec![
                ("element", Ty::param("T")),
                (
                    "next",
                    Ty::option(Ty::non_null(Ty::adt("Node", vec![Ty::param("T")]))),
                ),
                (
                    "prev",
                    Ty::option(Ty::non_null(Ty::adt("Node", vec![Ty::param("T")]))),
                ),
            ],
        ));
        TypeRegistry::new(p, LayoutOracle::default())
    }

    #[test]
    fn interning_round_trips() {
        let reg = registry();
        let id = reg.intern(&Ty::usize());
        assert_eq!(reg.resolve(id), Ty::usize());
        assert_eq!(reg.intern(&Ty::usize()), id);
        assert_eq!(reg.resolve_expr(&id.to_expr()), Some(Ty::usize()));
    }

    #[test]
    fn size_expr_is_literal_for_concrete_types() {
        let reg = registry();
        assert_eq!(reg.size_expr(&Ty::usize()), Expr::Int(8));
    }

    #[test]
    fn size_expr_is_symbolic_for_generics() {
        let reg = registry();
        let e = reg.size_expr(&Ty::param("T"));
        assert!(matches!(e, Expr::App(..)));
    }

    #[test]
    fn address_round_trip() {
        let reg = registry();
        let node_ty = reg.intern(&Ty::adt("Node", vec![Ty::param("T")]));
        let addr = Address::base(3).with_field(node_ty, 1);
        let e = addr.to_expr();
        assert_eq!(Address::from_expr(&e), Some(addr));
    }

    #[test]
    fn struct_info_substitutes_generics() {
        let reg = registry();
        let (tag, fields) = reg.struct_info(&Ty::adt("Node", vec![Ty::i32()])).unwrap();
        assert_eq!(tag, "Node");
        assert_eq!(fields[0], Ty::i32());
        assert_eq!(fields.len(), 3);
    }

    #[test]
    fn non_pointer_expr_is_not_an_address() {
        assert_eq!(Address::from_expr(&Expr::Int(3)), None);
    }
}
