//! The top-level verification driver.
//!
//! Builds a Gillian engine from a mini-MIR program plus a Gilsonite context
//! (predicates, specifications, lemmas), registers the semi-automatic
//! tactics, and runs per-function verification producing the timing reports
//! from which Table 1 is regenerated.

use crate::compile::{CompileError, Compiler};
use crate::gilsonite::{GilsoniteCtx, SpecMode};
use crate::state::GRState;
use crate::tactics;
use crate::types::Types;
use gillian_engine::{Engine, EngineOptions, EngineStats, VerError, VerErrorKind};
use gillian_solver::{BackendKind, Expr, SolverStats};
use std::time::Duration;

/// Options for building a [`Verifier`].
#[derive(Clone, Debug)]
pub struct VerifierOptions {
    /// Verified property (TS or FC).
    pub mode: SpecMode,
    /// Engine tuning; [`EngineOptions::baseline`] disables the paper's
    /// automations and is used as the comparison baseline in the benches.
    pub engine: EngineOptions,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            mode: SpecMode::FunctionalCorrectness,
            engine: EngineOptions::default(),
        }
    }
}

impl VerifierOptions {
    pub fn type_safety() -> Self {
        VerifierOptions {
            mode: SpecMode::TypeSafety,
            engine: EngineOptions {
                panics_are_safe: true,
                ..EngineOptions::default()
            },
        }
    }

    pub fn functional_correctness() -> Self {
        VerifierOptions::default()
    }

    pub fn baseline(mut self) -> Self {
        self.engine = EngineOptions::baseline();
        self
    }
}

/// A structured verification diagnostic: what went wrong, in a form callers
/// can match on without parsing messages. Replaces the stringly-typed
/// `error: Option<String>` that reports used to carry.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyDiagnostic {
    /// The body does not satisfy its specification on some path.
    SpecMismatch { message: String },
    /// A resource was missing during consumption; `hints` are the expressions
    /// whose resource could not be found.
    ConsumeFailure { message: String, hints: Vec<Expr> },
    /// The mini-MIR program failed to compile to GIL.
    CompileError { message: String },
    /// A search budget (steps, inlining depth, recovery) was exhausted.
    Timeout { message: String },
    /// The verification target has no registered specification or proof.
    MissingSpec { message: String },
    /// Any other engine-level failure (reachable panic, unknown predicate…).
    Engine { message: String },
    /// A static-analysis (lint) error blocked verification before any proof
    /// search started.
    Lint { message: String },
    /// The verification *process* panicked mid-proof (an engine bug or an
    /// injected fault, not a property of the program). The target is
    /// reported as unverified-with-cause so the rest of the batch — or the
    /// resident daemon — keeps going; the verdict is explicitly incomplete,
    /// never flipped.
    Panic { message: String },
}

impl VerifyDiagnostic {
    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            VerifyDiagnostic::SpecMismatch { message }
            | VerifyDiagnostic::ConsumeFailure { message, .. }
            | VerifyDiagnostic::CompileError { message }
            | VerifyDiagnostic::Timeout { message }
            | VerifyDiagnostic::MissingSpec { message }
            | VerifyDiagnostic::Engine { message }
            | VerifyDiagnostic::Lint { message }
            | VerifyDiagnostic::Panic { message } => message,
        }
    }

    /// The expression hints attached to the diagnostic (the resources a
    /// failed consumption was looking for); empty for other categories.
    pub fn hints(&self) -> &[Expr] {
        match self {
            VerifyDiagnostic::ConsumeFailure { hints, .. } => hints,
            _ => &[],
        }
    }

    /// A stable machine-readable category label.
    pub fn category(&self) -> &'static str {
        match self {
            VerifyDiagnostic::SpecMismatch { .. } => "spec-mismatch",
            VerifyDiagnostic::ConsumeFailure { .. } => "consume-failure",
            VerifyDiagnostic::CompileError { .. } => "compile-error",
            VerifyDiagnostic::Timeout { .. } => "timeout",
            VerifyDiagnostic::MissingSpec { .. } => "missing-spec",
            VerifyDiagnostic::Engine { .. } => "engine",
            VerifyDiagnostic::Lint { .. } => "lint",
            VerifyDiagnostic::Panic { .. } => "panic",
        }
    }

    /// A stable fingerprint of the diagnostic: its category plus the message
    /// with freshened logical-variable suffixes (`name%42`) normalised away,
    /// so that two runs of the same obligation — e.g. with different worker
    /// counts — compare equal.
    pub fn fingerprint(&self) -> String {
        let mut msg = String::with_capacity(self.message().len());
        let mut chars = self.message().chars().peekable();
        while let Some(c) = chars.next() {
            if c == '%' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                    chars.next();
                }
                msg.push_str("%_");
            } else {
                msg.push(c);
            }
        }
        format!("{}: {msg}", self.category())
    }

    /// Builds a [`VerifyDiagnostic::Panic`] from a `catch_unwind` payload
    /// (the driver and the daemon both isolate per-target panics and report
    /// them through this constructor).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> VerifyDiagnostic {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        VerifyDiagnostic::Panic {
            message: format!("verification panicked mid-proof: {message}"),
        }
    }
}

impl std::fmt::Display for VerifyDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.category(), self.message())
    }
}

impl From<VerError> for VerifyDiagnostic {
    fn from(e: VerError) -> Self {
        match e.kind {
            VerErrorKind::SpecMismatch => VerifyDiagnostic::SpecMismatch { message: e.msg },
            VerErrorKind::ConsumeFailure => VerifyDiagnostic::ConsumeFailure {
                message: e.msg,
                hints: e.hint,
            },
            VerErrorKind::Timeout => VerifyDiagnostic::Timeout { message: e.msg },
            VerErrorKind::MissingSpec => VerifyDiagnostic::MissingSpec { message: e.msg },
            VerErrorKind::Engine => VerifyDiagnostic::Engine { message: e.msg },
        }
    }
}

impl From<CompileError> for VerifyDiagnostic {
    fn from(e: CompileError) -> Self {
        VerifyDiagnostic::CompileError {
            message: e.to_string(),
        }
    }
}

/// The result of verifying one function or lemma.
#[derive(Clone, Debug)]
pub struct CaseReport {
    pub name: String,
    pub verified: bool,
    pub elapsed: Duration,
    /// Structured failure diagnostic (`None` when verified).
    pub diagnostic: Option<VerifyDiagnostic>,
}

impl CaseReport {
    /// The diagnostic message, if any (convenience for display code).
    pub fn error_message(&self) -> Option<String> {
        self.diagnostic.as_ref().map(|d| d.to_string())
    }

    /// Panics with the diagnostic if verification failed (used in tests).
    pub fn expect_verified(&self) -> &Self {
        assert!(
            self.verified,
            "verification of {} failed: {}",
            self.name,
            self.error_message()
                .unwrap_or_else(|| "unknown error".into())
        );
        self
    }
}

/// The Gillian-Rust verifier for one program.
pub struct Verifier {
    pub engine: Engine<GRState>,
    pub types: Types,
    pub mode: SpecMode,
}

impl Verifier {
    /// Builds a verifier: compiles every function of the program registered
    /// in the type registry and installs the Gilsonite predicates, specs and
    /// lemmas.
    pub fn new(
        types: Types,
        gilsonite: GilsoniteCtx,
        opts: VerifierOptions,
    ) -> Result<Verifier, CompileError> {
        let mut prog = gilsonite.prog;
        {
            let mut compiler = Compiler::new(&types);
            let functions: Vec<_> = types.program.functions().cloned().collect();
            for f in &functions {
                if f.body.is_some() {
                    prog.add_proc(compiler.compile_fn(f)?);
                }
            }
        }
        let mut engine = Engine::with_options(prog, opts.engine);
        engine.register_tactic(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            tactics::mutref_auto_resolve,
        );
        engine.register_tactic(
            crate::compile::GHOST_PROPHECY_AUTO_UPDATE,
            tactics::prophecy_auto_update,
        );
        Ok(Verifier {
            engine,
            types,
            mode: opts.mode,
        })
    }

    fn initial_state(&self) -> GRState {
        GRState::with_types(self.types.clone())
    }

    /// Verifies one function against its registered specification.
    pub fn verify_fn(&self, name: &str) -> CaseReport {
        let report = self.engine.verify_proc_from(name, self.initial_state());
        CaseReport {
            name: name.to_owned(),
            verified: report.verified,
            elapsed: report.elapsed,
            diagnostic: report.error.map(VerifyDiagnostic::from),
        }
    }

    /// Verifies a lemma from its proof script.
    pub fn verify_lemma(&self, name: &str) -> CaseReport {
        let report = self.engine.verify_lemma_from(name, self.initial_state());
        CaseReport {
            name: name.to_owned(),
            verified: report.verified,
            elapsed: report.elapsed,
            diagnostic: report.error.map(VerifyDiagnostic::from),
        }
    }

    /// Verifies several functions, returning one report per function.
    pub fn verify_all(&self, names: &[&str]) -> Vec<CaseReport> {
        names.iter().map(|n| self.verify_fn(n)).collect()
    }

    /// Total verification time of a batch (the "Time" column of Table 1).
    pub fn total_time(reports: &[CaseReport]) -> Duration {
        reports.iter().map(|r| r.elapsed).sum()
    }

    /// Engine statistics (used by the ablation benches).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Solver statistics (per-backend query/hit counts).
    pub fn solver_stats(&self) -> SolverStats {
        self.engine.solver.stats()
    }

    /// The solver backend answering this verifier's pure queries.
    pub fn backend_kind(&self) -> BackendKind {
        self.engine.solver.backend_kind()
    }

    /// Re-runs the verifier on another solver backend: fresh arena, cache
    /// and statistics, same compiled program and specifications. Used by the
    /// solver ablation harness.
    pub fn set_backend(&mut self, kind: BackendKind) {
        self.engine.set_backend(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilsonite::lv;
    use crate::types::TypeRegistry;
    use gillian_solver::Expr;
    use rust_ir::{builder::BodyBuilder, BinOp, LayoutOracle, Operand, Place, Program, Ty};

    /// A tiny end-to-end check: a function that adds 1 to a `usize` behind a
    /// `&mut usize`, specified with prophecies, verifies with a single
    /// `mutref_auto_resolve` annotation.
    #[test]
    fn increment_through_mut_ref_verifies() {
        let mut program = Program::new("demo");
        let mut b = BodyBuilder::new("inc", vec![("x", Ty::mut_ref("'a", Ty::usize()))], Ty::Unit);
        let tmp = b.local("tmp", Ty::usize());
        b.assign_use(tmp.clone(), Operand::copy(Place::local("x").deref()));
        let tmp2 = b.local("tmp2", Ty::usize());
        b.assign_binop(
            tmp2.clone(),
            BinOp::Add,
            Operand::copy(tmp),
            Operand::usize(1),
        );
        b.assign_use(Place::local("x").deref(), Operand::copy(tmp2));
        let cont = b.new_block();
        b.call(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            vec![],
            vec![Operand::local("x")],
            Place::local("_ret"),
            cont,
        );
        b.switch_to(cont);
        b.ret_val(Operand::unit());
        let f = b.finish();
        program.add_fn(f.clone());

        let types = TypeRegistry::new(program, LayoutOracle::default());
        let mut gils = GilsoniteCtx::new(types.clone(), SpecMode::FunctionalCorrectness);
        let spec = gils.fn_spec(
            &f,
            vec![Expr::lt(lv("x_cur"), Expr::Int(1000))],
            vec![Expr::eq(lv("x_fin"), Expr::add(lv("x_cur"), Expr::Int(1)))],
        );
        gils.add_spec(spec);
        let verifier = Verifier::new(types, gils, VerifierOptions::default()).unwrap();
        verifier.verify_fn("inc").expect_verified();
    }

    /// The same function fails to verify if the postcondition is wrong —
    /// guarding against a vacuously-passing pipeline.
    #[test]
    fn wrong_postcondition_is_rejected() {
        let mut program = Program::new("demo");
        let mut b = BodyBuilder::new("inc", vec![("x", Ty::mut_ref("'a", Ty::usize()))], Ty::Unit);
        let tmp = b.local("tmp", Ty::usize());
        b.assign_use(tmp.clone(), Operand::copy(Place::local("x").deref()));
        let tmp2 = b.local("tmp2", Ty::usize());
        b.assign_binop(
            tmp2.clone(),
            BinOp::Add,
            Operand::copy(tmp),
            Operand::usize(1),
        );
        b.assign_use(Place::local("x").deref(), Operand::copy(tmp2));
        let cont = b.new_block();
        b.call(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            vec![],
            vec![Operand::local("x")],
            Place::local("_ret"),
            cont,
        );
        b.switch_to(cont);
        b.ret_val(Operand::unit());
        let f = b.finish();
        program.add_fn(f.clone());

        let types = TypeRegistry::new(program, LayoutOracle::default());
        let mut gils = GilsoniteCtx::new(types.clone(), SpecMode::FunctionalCorrectness);
        let spec = gils.fn_spec(
            &f,
            vec![Expr::lt(lv("x_cur"), Expr::Int(1000))],
            vec![Expr::eq(lv("x_fin"), Expr::add(lv("x_cur"), Expr::Int(2)))],
        );
        gils.add_spec(spec);
        let verifier = Verifier::new(types, gils, VerifierOptions::default()).unwrap();
        let report = verifier.verify_fn("inc");
        assert!(!report.verified);
    }
}

#[cfg(test)]
mod sync_assertions {
    use super::*;
    fn _assert_sync<T: Sync + Send>() {}
    #[test]
    fn verifier_is_sync() {
        _assert_sync::<Verifier>();
    }
}
