//! The top-level verification driver.
//!
//! Builds a Gillian engine from a mini-MIR program plus a Gilsonite context
//! (predicates, specifications, lemmas), registers the semi-automatic
//! tactics, and runs per-function verification producing the timing reports
//! from which Table 1 is regenerated.

use crate::compile::{CompileError, Compiler};
use crate::gilsonite::{GilsoniteCtx, SpecMode};
use crate::state::GRState;
use crate::tactics;
use crate::types::Types;
use gillian_engine::{Engine, EngineOptions, EngineStats};
use std::time::Duration;

/// Options for building a [`Verifier`].
#[derive(Clone, Debug)]
pub struct VerifierOptions {
    /// Verified property (TS or FC).
    pub mode: SpecMode,
    /// Engine tuning; [`EngineOptions::baseline`] disables the paper's
    /// automations and is used as the comparison baseline in the benches.
    pub engine: EngineOptions,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            mode: SpecMode::FunctionalCorrectness,
            engine: EngineOptions::default(),
        }
    }
}

impl VerifierOptions {
    pub fn type_safety() -> Self {
        let mut engine = EngineOptions::default();
        engine.panics_are_safe = true;
        VerifierOptions {
            mode: SpecMode::TypeSafety,
            engine,
        }
    }

    pub fn functional_correctness() -> Self {
        VerifierOptions::default()
    }

    pub fn baseline(mut self) -> Self {
        self.engine = EngineOptions::baseline();
        self
    }
}

/// The result of verifying one function or lemma.
#[derive(Clone, Debug)]
pub struct CaseReport {
    pub name: String,
    pub verified: bool,
    pub elapsed: Duration,
    pub error: Option<String>,
}

impl CaseReport {
    /// Panics with the error message if verification failed (used in tests).
    pub fn expect_verified(&self) -> &Self {
        assert!(
            self.verified,
            "verification of {} failed: {}",
            self.name,
            self.error.as_deref().unwrap_or("unknown error")
        );
        self
    }
}

/// The Gillian-Rust verifier for one program.
pub struct Verifier {
    pub engine: Engine<GRState>,
    pub types: Types,
    pub mode: SpecMode,
}

impl Verifier {
    /// Builds a verifier: compiles every function of the program registered
    /// in the type registry and installs the Gilsonite predicates, specs and
    /// lemmas.
    pub fn new(
        types: Types,
        gilsonite: GilsoniteCtx,
        opts: VerifierOptions,
    ) -> Result<Verifier, CompileError> {
        let mut prog = gilsonite.prog;
        {
            let mut compiler = Compiler::new(&types);
            let functions: Vec<_> = types.program.functions().cloned().collect();
            for f in &functions {
                if f.body.is_some() {
                    prog.add_proc(compiler.compile_fn(f)?);
                }
            }
        }
        let mut engine = Engine::with_options(prog, opts.engine);
        engine.register_tactic(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            tactics::mutref_auto_resolve,
        );
        engine.register_tactic(
            crate::compile::GHOST_PROPHECY_AUTO_UPDATE,
            tactics::prophecy_auto_update,
        );
        Ok(Verifier {
            engine,
            types,
            mode: opts.mode,
        })
    }

    fn initial_state(&self) -> GRState {
        GRState::with_types(self.types.clone())
    }

    /// Verifies one function against its registered specification.
    pub fn verify_fn(&self, name: &str) -> CaseReport {
        let report = self.engine.verify_proc_from(name, self.initial_state());
        CaseReport {
            name: name.to_owned(),
            verified: report.verified,
            elapsed: report.elapsed,
            error: report.error,
        }
    }

    /// Verifies a lemma from its proof script.
    pub fn verify_lemma(&self, name: &str) -> CaseReport {
        let report = self.engine.verify_lemma_from(name, self.initial_state());
        CaseReport {
            name: name.to_owned(),
            verified: report.verified,
            elapsed: report.elapsed,
            error: report.error,
        }
    }

    /// Verifies several functions, returning one report per function.
    pub fn verify_all(&self, names: &[&str]) -> Vec<CaseReport> {
        names.iter().map(|n| self.verify_fn(n)).collect()
    }

    /// Total verification time of a batch (the "Time" column of Table 1).
    pub fn total_time(reports: &[CaseReport]) -> Duration {
        reports.iter().map(|r| r.elapsed).sum()
    }

    /// Engine statistics (used by the ablation benches).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilsonite::lv;
    use crate::types::TypeRegistry;
    use gillian_solver::Expr;
    use rust_ir::{builder::BodyBuilder, BinOp, LayoutOracle, Operand, Place, Program, Ty};

    /// A tiny end-to-end check: a function that adds 1 to a `usize` behind a
    /// `&mut usize`, specified with prophecies, verifies with a single
    /// `mutref_auto_resolve` annotation.
    #[test]
    fn increment_through_mut_ref_verifies() {
        let mut program = Program::new("demo");
        let mut b = BodyBuilder::new(
            "inc",
            vec![("x", Ty::mut_ref("'a", Ty::usize()))],
            Ty::Unit,
        );
        let tmp = b.local("tmp", Ty::usize());
        b.assign_use(tmp.clone(), Operand::copy(Place::local("x").deref()));
        let tmp2 = b.local("tmp2", Ty::usize());
        b.assign_binop(tmp2.clone(), BinOp::Add, Operand::copy(tmp), Operand::usize(1));
        b.assign_use(Place::local("x").deref(), Operand::copy(tmp2));
        let cont = b.new_block();
        b.call(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            vec![],
            vec![Operand::local("x")],
            Place::local("_ret"),
            cont,
        );
        b.switch_to(cont);
        b.ret_val(Operand::unit());
        let f = b.finish();
        program.add_fn(f.clone());

        let types = TypeRegistry::new(program, LayoutOracle::default());
        let mut gils = GilsoniteCtx::new(types.clone(), SpecMode::FunctionalCorrectness);
        let spec = gils.fn_spec(
            &f,
            vec![Expr::lt(lv("x_cur"), Expr::Int(1000))],
            vec![Expr::eq(lv("x_fin"), Expr::add(lv("x_cur"), Expr::Int(1)))],
        );
        gils.add_spec(spec);
        let verifier = Verifier::new(types, gils, VerifierOptions::default()).unwrap();
        verifier.verify_fn("inc").expect_verified();
    }

    /// The same function fails to verify if the postcondition is wrong —
    /// guarding against a vacuously-passing pipeline.
    #[test]
    fn wrong_postcondition_is_rejected() {
        let mut program = Program::new("demo");
        let mut b = BodyBuilder::new(
            "inc",
            vec![("x", Ty::mut_ref("'a", Ty::usize()))],
            Ty::Unit,
        );
        let tmp = b.local("tmp", Ty::usize());
        b.assign_use(tmp.clone(), Operand::copy(Place::local("x").deref()));
        let tmp2 = b.local("tmp2", Ty::usize());
        b.assign_binop(tmp2.clone(), BinOp::Add, Operand::copy(tmp), Operand::usize(1));
        b.assign_use(Place::local("x").deref(), Operand::copy(tmp2));
        let cont = b.new_block();
        b.call(
            crate::compile::GHOST_MUTREF_AUTO_RESOLVE,
            vec![],
            vec![Operand::local("x")],
            Place::local("_ret"),
            cont,
        );
        b.switch_to(cont);
        b.ret_val(Operand::unit());
        let f = b.finish();
        program.add_fn(f.clone());

        let types = TypeRegistry::new(program, LayoutOracle::default());
        let mut gils = GilsoniteCtx::new(types.clone(), SpecMode::FunctionalCorrectness);
        let spec = gils.fn_spec(
            &f,
            vec![Expr::lt(lv("x_cur"), Expr::Int(1000))],
            vec![Expr::eq(lv("x_fin"), Expr::add(lv("x_cur"), Expr::Int(2)))],
        );
        gils.add_spec(spec);
        let verifier = Verifier::new(types, gils, VerifierOptions::default()).unwrap();
        let report = verifier.verify_fn("inc");
        assert!(!report.verified);
    }
}
