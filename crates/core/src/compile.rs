//! The mini-MIR → GIL compiler.
//!
//! Each mini-MIR body is translated to a GIL procedure over the Gillian-Rust
//! actions (`alloc`, `load`, `store`, `free`, `unwrap_option`, ...). Places
//! are compiled to layout-independent address expressions (`ptr_field` /
//! `ptr_offset` wrappers resolved by the heap), matches on `Option` become
//! conditional jumps plus an `unwrap_option` action, and checked machine
//! arithmetic emits an explicit overflow branch ending in `Fail` — which is
//! exactly where the observation context prunes impossible panics (§6).

use crate::types::{ptr_field, ptr_offset, Types};
use gillian_engine::{Asrt, Cmd, LogicCmd, Proc};
use gillian_solver::{Expr, Symbol};
use rust_ir::{
    AggregateKind, BinOp, Body, ConstVal, FnDef, IntTy, Operand, Place, PlaceElem, Rvalue,
    Statement, Terminator, Ty, UnOp,
};
use std::collections::HashMap;

/// Ghost-call name for the `mutref_auto_resolve!` annotation.
pub const GHOST_MUTREF_AUTO_RESOLVE: &str = "mutref_auto_resolve";
/// Ghost-call name for the `prophecy_auto_update` annotation.
pub const GHOST_PROPHECY_AUTO_UPDATE: &str = "prophecy_auto_update";

/// Compilation errors.
#[derive(Clone, Debug)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Offset used to encode unresolved block targets during compilation.
const FIXUP_BASE: usize = 1_000_000;

/// The compiler for one program.
pub struct Compiler<'a> {
    pub types: &'a Types,
    /// Names of functions that are treated as ghost tactics.
    tactic_names: Vec<String>,
    /// Fresh temporary counter.
    tmp: u32,
}

/// A compiled place: either a pure local or a memory location.
enum PlaceAccess {
    /// The value lives in the GIL variable store.
    Pure(Symbol),
    /// The value lives in memory at the given address, with the given type.
    Mem { addr: Expr, ty: Ty },
}

impl<'a> Compiler<'a> {
    pub fn new(types: &'a Types) -> Self {
        Compiler {
            types,
            tactic_names: vec![
                GHOST_MUTREF_AUTO_RESOLVE.to_owned(),
                GHOST_PROPHECY_AUTO_UPDATE.to_owned(),
            ],
            tmp: 0,
        }
    }

    fn fresh_tmp(&mut self) -> Symbol {
        self.tmp += 1;
        Symbol::new(&format!("__t{}", self.tmp))
    }

    fn ty_expr(&self, ty: &Ty) -> Expr {
        self.types.intern(ty).to_expr()
    }

    /// Compiles a function definition into a GIL procedure.
    pub fn compile_fn(&mut self, f: &FnDef) -> Result<Proc, CompileError> {
        let body = f
            .body
            .as_ref()
            .ok_or_else(|| CompileError(format!("{} has no body", f.name)))?;
        let local_tys = self.local_types(f, body);
        let mut cmds: Vec<Cmd> = Vec::new();
        let mut block_starts: Vec<usize> = Vec::new();
        // Trampolines for Option matches: (target block, bind name, scrutinee).
        let mut trampolines: Vec<(usize, String, Expr)> = Vec::new();

        let n_blocks = body.blocks.len();
        for block in &body.blocks {
            block_starts.push(cmds.len());
            for stmt in &block.stmts {
                self.compile_stmt(stmt, &local_tys, &mut cmds)?;
            }
            self.compile_terminator(block, &local_tys, &mut cmds, &mut trampolines, n_blocks)?;
        }
        // Emit trampolines: bind the payload of an Option match, then jump.
        let mut trampoline_starts: Vec<usize> = Vec::new();
        for (target, bind, scrutinee) in &trampolines {
            trampoline_starts.push(cmds.len());
            cmds.push(Cmd::Action {
                lhs: Symbol::new(bind),
                name: Symbol::new("unwrap_option"),
                args: vec![scrutinee.clone()],
            });
            cmds.push(Cmd::Goto(FIXUP_BASE + target));
        }
        // Resolve encoded jump targets.
        let resolve = |t: usize| -> usize {
            let target = t - FIXUP_BASE;
            if target < n_blocks {
                block_starts[target]
            } else {
                trampoline_starts[target - n_blocks]
            }
        };
        for cmd in &mut cmds {
            match cmd {
                Cmd::Goto(t) if *t >= FIXUP_BASE => *t = resolve(*t),
                Cmd::GotoIf {
                    then_target,
                    else_target,
                    ..
                } => {
                    if *then_target >= FIXUP_BASE {
                        *then_target = resolve(*then_target);
                    }
                    if *else_target >= FIXUP_BASE {
                        *else_target = resolve(*else_target);
                    }
                }
                _ => {}
            }
        }
        let params: Vec<&str> = f.params.iter().map(|(n, _)| n.as_str()).collect();
        Ok(Proc::new(&f.name, &params, cmds).with_source_lines(f.executable_lines()))
    }

    fn local_types(&self, f: &FnDef, body: &Body) -> HashMap<String, Ty> {
        let mut map = HashMap::new();
        for (n, t) in &f.params {
            map.insert(n.clone(), t.clone());
        }
        for (n, t) in &body.locals {
            map.insert(n.clone(), t.clone());
        }
        map
    }

    fn compile_stmt(
        &mut self,
        stmt: &Statement,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<(), CompileError> {
        match stmt {
            Statement::Nop => {
                cmds.push(Cmd::Skip);
                Ok(())
            }
            Statement::Assign(place, rvalue) => {
                let value = self.compile_rvalue(rvalue, local_tys, cmds)?;
                // Overflow checks for checked machine arithmetic.
                if let Rvalue::BinaryOp(BinOp::Add | BinOp::Sub | BinOp::Mul, ..) = rvalue {
                    if let Some(int_ty) = self.place_int_ty(place, local_tys) {
                        self.emit_overflow_check(&value, int_ty, cmds);
                    }
                }
                self.store_to_place(place, value, local_tys, cmds)
            }
        }
    }

    /// Emits `if value within bounds continue else fail`.
    fn emit_overflow_check(&mut self, value: &Expr, int_ty: IntTy, cmds: &mut Vec<Cmd>) {
        let in_bounds = Expr::and(
            Expr::le(Expr::Int(int_ty.min()), value.clone()),
            Expr::le(value.clone(), Expr::Int(int_ty.max())),
        );
        let here = cmds.len();
        cmds.push(Cmd::GotoIf {
            guard: in_bounds,
            then_target: here + 2,
            else_target: here + 1,
        });
        cmds.push(Cmd::Fail(format!(
            "attempt to compute with overflow ({int_ty})"
        )));
    }

    fn place_int_ty(&self, place: &Place, local_tys: &HashMap<String, Ty>) -> Option<IntTy> {
        match self.place_ty(place, local_tys) {
            Some(Ty::Int(i)) => Some(i),
            _ => None,
        }
    }

    /// The type of a place after applying its projections.
    fn place_ty(&self, place: &Place, local_tys: &HashMap<String, Ty>) -> Option<Ty> {
        let mut ty = local_tys.get(&place.local)?.clone();
        for elem in &place.proj {
            ty = match elem {
                PlaceElem::Deref => match ty {
                    Ty::RawPtr(t) | Ty::NonNull(t) | Ty::Boxed(t) => *t,
                    Ty::Ref(_, _, t) => *t,
                    other => other,
                },
                PlaceElem::Field(idx) => match &ty {
                    Ty::Adt(name, args) => self.types.program.field_ty(name, args, *idx)?,
                    Ty::Tuple(items) => items.get(*idx)?.clone(),
                    _ => return None,
                },
                PlaceElem::Index(_) => ty.clone(),
            };
        }
        Some(ty)
    }

    /// Compiles a place into either a pure local or an address.
    fn compile_place(
        &mut self,
        place: &Place,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<PlaceAccess, CompileError> {
        let mut access = PlaceAccess::Pure(Symbol::new(&place.local));
        let mut cur_ty = local_tys
            .get(&place.local)
            .cloned()
            .ok_or_else(|| CompileError(format!("unknown local {}", place.local)))?;
        for elem in &place.proj {
            match elem {
                PlaceElem::Deref => {
                    let pointee = match &cur_ty {
                        Ty::RawPtr(t) | Ty::NonNull(t) | Ty::Boxed(t) => (**t).clone(),
                        Ty::Ref(_, _, t) => (**t).clone(),
                        other => other.clone(),
                    };
                    let ptr_value = match access {
                        PlaceAccess::Pure(sym) => Expr::PVar(sym),
                        PlaceAccess::Mem { addr, ty } => {
                            let tmp = self.fresh_tmp();
                            cmds.push(Cmd::Action {
                                lhs: tmp,
                                name: Symbol::new("load"),
                                args: vec![addr, self.ty_expr(&ty)],
                            });
                            Expr::PVar(tmp)
                        }
                    };
                    access = PlaceAccess::Mem {
                        addr: ptr_value,
                        ty: pointee.clone(),
                    };
                    cur_ty = pointee;
                }
                PlaceElem::Field(idx) => {
                    let field_ty = match &cur_ty {
                        Ty::Adt(name, args) => self
                            .types
                            .program
                            .field_ty(name, args, *idx)
                            .ok_or_else(|| CompileError(format!("no field {idx} on {name}")))?,
                        Ty::Tuple(items) => items
                            .get(*idx)
                            .cloned()
                            .ok_or_else(|| CompileError("tuple field out of range".into()))?,
                        other => {
                            return Err(CompileError(format!(
                                "field projection on non-ADT type {other}"
                            )))
                        }
                    };
                    match access {
                        PlaceAccess::Mem { addr, .. } => {
                            let struct_id = self.types.intern(&cur_ty);
                            access = PlaceAccess::Mem {
                                addr: ptr_field(addr, struct_id, *idx),
                                ty: field_ty.clone(),
                            };
                        }
                        PlaceAccess::Pure(sym) => {
                            return Err(CompileError(format!(
                                "field access on the by-value struct local {sym} is not \
                                 supported; take a reference first"
                            )));
                        }
                    }
                    cur_ty = field_ty;
                }
                PlaceElem::Index(op) => {
                    let offset = self.compile_operand(op, local_tys, cmds)?;
                    let elem_id = self.types.intern(&cur_ty);
                    let base = match access {
                        PlaceAccess::Mem { addr, .. } => addr,
                        PlaceAccess::Pure(sym) => Expr::PVar(sym),
                    };
                    access = PlaceAccess::Mem {
                        addr: ptr_offset(base, elem_id, offset),
                        ty: cur_ty.clone(),
                    };
                }
            }
        }
        Ok(access)
    }

    /// Compiles an operand to an expression (emitting loads as needed).
    fn compile_operand(
        &mut self,
        op: &Operand,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<Expr, CompileError> {
        match op {
            Operand::Copy(place) | Operand::Move(place) => {
                let is_move = matches!(op, Operand::Move(_));
                match self.compile_place(place, local_tys, cmds)? {
                    PlaceAccess::Pure(sym) => Ok(Expr::PVar(sym)),
                    PlaceAccess::Mem { addr, ty } => {
                        let tmp = self.fresh_tmp();
                        cmds.push(Cmd::Action {
                            lhs: tmp,
                            name: Symbol::new(if is_move { "load_move" } else { "load" }),
                            args: vec![addr, self.ty_expr(&ty)],
                        });
                        Ok(Expr::PVar(tmp))
                    }
                }
            }
            Operand::Const(c) => Ok(self.compile_const(c)),
        }
    }

    fn compile_const(&self, c: &ConstVal) -> Expr {
        match c {
            ConstVal::Unit => Expr::Unit,
            ConstVal::Bool(b) => Expr::Bool(*b),
            ConstVal::Int(i, _) => Expr::Int(*i),
            ConstVal::NoneOf(_) => Expr::none(),
            ConstVal::IntMax(t) => Expr::Int(t.max()),
        }
    }

    fn compile_rvalue(
        &mut self,
        rvalue: &Rvalue,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<Expr, CompileError> {
        match rvalue {
            Rvalue::Use(op) => self.compile_operand(op, local_tys, cmds),
            Rvalue::MutRef(place) | Rvalue::AddrOf(place) => {
                match self.compile_place(place, local_tys, cmds)? {
                    PlaceAccess::Mem { addr, .. } => Ok(addr),
                    PlaceAccess::Pure(sym) => Err(CompileError(format!(
                        "taking a reference to the local {sym} is not supported \
                         (locals live in the store, not in memory)"
                    ))),
                }
            }
            Rvalue::BinaryOp(op, a, b) => {
                let a = self.compile_operand(a, local_tys, cmds)?;
                let b = self.compile_operand(b, local_tys, cmds)?;
                Ok(compile_binop(*op, a, b))
            }
            Rvalue::UnaryOp(op, a) => {
                let a = self.compile_operand(a, local_tys, cmds)?;
                Ok(match op {
                    UnOp::Not => Expr::not(a),
                    UnOp::Neg => Expr::neg(a),
                })
            }
            Rvalue::Aggregate(kind, ops) => {
                let mut args = Vec::new();
                for op in ops {
                    args.push(self.compile_operand(op, local_tys, cmds)?);
                }
                Ok(match kind {
                    AggregateKind::Struct(name, _) => Expr::ctor(&format!("struct::{name}"), args),
                    AggregateKind::EnumVariant(name, _, variant) => {
                        Expr::ctor(&format!("enum::{name}::{variant}"), args)
                    }
                    AggregateKind::Some(_) => Expr::some(args.into_iter().next().unwrap()),
                    AggregateKind::Tuple => Expr::Tuple(args),
                })
            }
            Rvalue::PtrCast(op, _) => self.compile_operand(op, local_tys, cmds),
        }
    }

    fn store_to_place(
        &mut self,
        place: &Place,
        value: Expr,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<(), CompileError> {
        match self.compile_place(place, local_tys, cmds)? {
            PlaceAccess::Pure(sym) => {
                cmds.push(Cmd::Assign(sym, value));
                Ok(())
            }
            PlaceAccess::Mem { addr, ty } => {
                let tmp = self.fresh_tmp();
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("store"),
                    args: vec![addr, self.ty_expr(&ty), value],
                });
                Ok(())
            }
        }
    }

    fn compile_terminator(
        &mut self,
        block: &rust_ir::BasicBlock,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
        trampolines: &mut Vec<(usize, String, Expr)>,
        n_blocks: usize,
    ) -> Result<(), CompileError> {
        match &block.term {
            Terminator::Goto(target) => {
                cmds.push(Cmd::Goto(FIXUP_BASE + target));
            }
            Terminator::Return => {
                cmds.push(Cmd::Return(Expr::pvar("_ret")));
            }
            Terminator::Panic(msg) => {
                cmds.push(Cmd::Fail(msg.clone()));
            }
            Terminator::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.compile_operand(cond, local_tys, cmds)?;
                cmds.push(Cmd::GotoIf {
                    guard: c,
                    then_target: FIXUP_BASE + then_blk,
                    else_target: FIXUP_BASE + else_blk,
                });
            }
            Terminator::MatchOption {
                scrutinee,
                none_blk,
                some_blk,
                bind,
            } => {
                let v = self.compile_operand(scrutinee, local_tys, cmds)?;
                // The Some branch goes through a trampoline that binds the
                // payload; trampoline i is addressed as pseudo-block
                // (n_blocks + i).
                let trampoline_index = trampolines.len();
                trampolines.push((*some_blk, bind.clone(), v.clone()));
                cmds.push(Cmd::GotoIf {
                    guard: Expr::ne(v, Expr::none()),
                    then_target: FIXUP_BASE + n_blocks + trampoline_index,
                    else_target: FIXUP_BASE + none_blk,
                });
            }
            Terminator::Call {
                func,
                generics,
                args,
                dest,
                target,
            } => {
                self.compile_call(func, generics, args, dest, local_tys, cmds)?;
                cmds.push(Cmd::Goto(FIXUP_BASE + target));
            }
        }
        Ok(())
    }

    fn compile_call(
        &mut self,
        func: &str,
        generics: &[Ty],
        args: &[Operand],
        dest: &Place,
        local_tys: &HashMap<String, Ty>,
        cmds: &mut Vec<Cmd>,
    ) -> Result<(), CompileError> {
        let mut arg_exprs = Vec::new();
        for a in args {
            arg_exprs.push(self.compile_operand(a, local_tys, cmds)?);
        }
        let g0 = generics.first().cloned().unwrap_or(Ty::Unit);
        let tmp = self.fresh_tmp();
        // Ghost tactics and logic commands.
        if self.tactic_names.iter().any(|t| t == func) {
            cmds.push(Cmd::Logic(LogicCmd::Tactic(Symbol::new(func), arg_exprs)));
            return Ok(());
        }
        if let Some(lemma) = func.strip_prefix("apply_lemma:") {
            cmds.push(Cmd::Logic(LogicCmd::ApplyLemma(
                Symbol::new(lemma),
                arg_exprs,
            )));
            return Ok(());
        }
        if let Some(pred) = func.strip_prefix("unfold:") {
            cmds.push(Cmd::Logic(LogicCmd::Unfold(Symbol::new(pred), arg_exprs)));
            return Ok(());
        }
        if let Some(pred) = func.strip_prefix("fold:") {
            cmds.push(Cmd::Logic(LogicCmd::Fold(Symbol::new(pred), arg_exprs)));
            return Ok(());
        }
        if func == "assert_pure" {
            cmds.push(Cmd::Logic(LogicCmd::Assert(Asrt::pure(
                arg_exprs.into_iter().next().unwrap_or(Expr::Bool(true)),
            ))));
            return Ok(());
        }
        match func {
            "box_new" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("alloc"),
                    args: vec![self.ty_expr(&g0)],
                });
                let store_tmp = self.fresh_tmp();
                cmds.push(Cmd::Action {
                    lhs: store_tmp,
                    name: Symbol::new("store"),
                    args: vec![
                        Expr::PVar(tmp),
                        self.ty_expr(&g0),
                        arg_exprs.into_iter().next().unwrap(),
                    ],
                });
                self.store_to_place(dest, Expr::PVar(tmp), local_tys, cmds)
            }
            "box_take" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("load"),
                    args: vec![arg_exprs[0].clone(), self.ty_expr(&g0)],
                });
                let free_tmp = self.fresh_tmp();
                cmds.push(Cmd::Action {
                    lhs: free_tmp,
                    name: Symbol::new("free"),
                    args: vec![arg_exprs[0].clone(), self.ty_expr(&g0)],
                });
                self.store_to_place(dest, Expr::PVar(tmp), local_tys, cmds)
            }
            "alloc_array" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("alloc_array"),
                    args: vec![self.ty_expr(&g0), arg_exprs[0].clone()],
                });
                self.store_to_place(dest, Expr::PVar(tmp), local_tys, cmds)
            }
            "dealloc_array" | "box_free" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("free"),
                    args: vec![arg_exprs[0].clone(), self.ty_expr(&g0)],
                });
                Ok(())
            }
            "retype_array" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("retype_array"),
                    args: vec![
                        arg_exprs[0].clone(),
                        self.ty_expr(&g0),
                        arg_exprs[1].clone(),
                    ],
                });
                self.store_to_place(dest, Expr::PVar(tmp), local_tys, cmds)
            }
            "copy_slice" => {
                cmds.push(Cmd::Action {
                    lhs: tmp,
                    name: Symbol::new("copy_slice"),
                    args: vec![
                        arg_exprs[0].clone(),
                        arg_exprs[1].clone(),
                        self.ty_expr(&g0),
                        arg_exprs[2].clone(),
                    ],
                });
                Ok(())
            }
            "ptr_offset" => {
                let elem_id = self.types.intern(&g0);
                let e = ptr_offset(arg_exprs[0].clone(), elem_id, arg_exprs[1].clone());
                self.store_to_place(dest, e, local_tys, cmds)
            }
            "box_leak"
            | "box_into_raw"
            | "box_from_raw"
            | "nonnull_new_unchecked"
            | "nonnull_as_ptr"
            | "into_nonnull"
            | "ptr_cast" => {
                self.store_to_place(dest, arg_exprs.into_iter().next().unwrap(), local_tys, cmds)
            }
            "option_some" => self.store_to_place(
                dest,
                Expr::some(arg_exprs.into_iter().next().unwrap()),
                local_tys,
                cmds,
            ),
            "option_is_some" => self.store_to_place(
                dest,
                Expr::ne(arg_exprs.into_iter().next().unwrap(), Expr::none()),
                local_tys,
                cmds,
            ),
            "option_is_none" => self.store_to_place(
                dest,
                Expr::eq(arg_exprs.into_iter().next().unwrap(), Expr::none()),
                local_tys,
                cmds,
            ),
            _ => {
                cmds.push(Cmd::Call {
                    lhs: tmp,
                    proc: Symbol::new(func),
                    args: arg_exprs,
                });
                self.store_to_place(dest, Expr::PVar(tmp), local_tys, cmds)
            }
        }
    }
}

fn compile_binop(op: BinOp, a: Expr, b: Expr) -> Expr {
    use gillian_solver::BinOp as E;
    let e_op = match op {
        BinOp::Add => E::Add,
        BinOp::Sub => E::Sub,
        BinOp::Mul => E::Mul,
        BinOp::Div => E::Div,
        BinOp::Rem => E::Rem,
        BinOp::Lt => E::Lt,
        BinOp::Le => E::Le,
        BinOp::Gt => E::Gt,
        BinOp::Ge => E::Ge,
        BinOp::Eq => E::Eq,
        BinOp::Ne => E::Ne,
        BinOp::And => E::And,
        BinOp::Or => E::Or,
    };
    Expr::bin(e_op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;
    use rust_ir::{builder::BodyBuilder, AdtDef, LayoutOracle, Operand, Place, Program};

    fn types_for(program: Program) -> Types {
        TypeRegistry::new(program, LayoutOracle::default())
    }

    #[test]
    fn compiles_straight_line_code() {
        let types = types_for(Program::new("t"));
        let mut c = Compiler::new(&types);
        let mut b = BodyBuilder::new("f", vec![("x", Ty::usize())], Ty::usize());
        b.ret_val(Operand::local("x"));
        let f = b.finish();
        let proc = c.compile_fn(&f).unwrap();
        assert_eq!(proc.params.len(), 1);
        assert!(matches!(proc.body.last(), Some(Cmd::Return(_))));
    }

    #[test]
    fn compiles_field_store_through_reference() {
        let mut program = Program::new("t");
        program.add_adt(AdtDef::strukt(
            "Pair",
            &[],
            vec![("a", Ty::usize()), ("b", Ty::usize())],
        ));
        let types = types_for(program);
        let mut c = Compiler::new(&types);
        let mut b = BodyBuilder::new(
            "set_a",
            vec![("p", Ty::mut_ref("'a", Ty::adt("Pair", vec![])))],
            Ty::Unit,
        );
        b.assign_use(Place::local("p").deref().field(0), Operand::usize(3));
        b.ret_val(Operand::unit());
        let f = b.finish();
        let proc = c.compile_fn(&f).unwrap();
        let has_store = proc
            .body
            .iter()
            .any(|cmd| matches!(cmd, Cmd::Action { name, .. } if name.as_str() == "store"));
        assert!(has_store, "expected a store action in {:#?}", proc.body);
    }

    #[test]
    fn overflow_check_emitted_for_usize_add() {
        let types = types_for(Program::new("t"));
        let mut c = Compiler::new(&types);
        let mut b = BodyBuilder::new("inc", vec![("x", Ty::usize())], Ty::usize());
        let t = b.local("t", Ty::usize());
        b.assign_binop(
            t.clone(),
            BinOp::Add,
            Operand::local("x"),
            Operand::usize(1),
        );
        b.ret_val(Operand::copy(t));
        let f = b.finish();
        let proc = c.compile_fn(&f).unwrap();
        assert!(proc
            .body
            .iter()
            .any(|cmd| matches!(cmd, Cmd::Fail(msg) if msg.contains("overflow"))));
    }

    #[test]
    fn match_option_uses_trampoline_with_unwrap() {
        let types = types_for(Program::new("t"));
        let mut c = Compiler::new(&types);
        let mut b = BodyBuilder::new("is_some", vec![("o", Ty::option(Ty::usize()))], Ty::Bool);
        let some_blk = b.new_block();
        let none_blk = b.new_block();
        b.match_option(Operand::local("o"), none_blk, some_blk, "payload");
        b.switch_to(some_blk);
        b.ret_val(Operand::bool(true));
        b.switch_to(none_blk);
        b.ret_val(Operand::bool(false));
        let f = b.finish();
        let proc = c.compile_fn(&f).unwrap();
        assert!(proc.body.iter().any(
            |cmd| matches!(cmd, Cmd::Action { name, .. } if name.as_str() == "unwrap_option")
        ));
        for cmd in &proc.body {
            match cmd {
                Cmd::Goto(t) => assert!(*t < proc.body.len()),
                Cmd::GotoIf {
                    then_target,
                    else_target,
                    ..
                } => {
                    assert!(*then_target < proc.body.len());
                    assert!(*else_target < proc.body.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ghost_calls_become_tactics() {
        let types = types_for(Program::new("t"));
        let mut c = Compiler::new(&types);
        let mut b = BodyBuilder::new("g", vec![("x", Ty::usize())], Ty::Unit);
        let cont = b.new_block();
        b.call(
            GHOST_MUTREF_AUTO_RESOLVE,
            vec![],
            vec![Operand::local("x")],
            Place::local("_ret"),
            cont,
        );
        b.switch_to(cont);
        b.ret_val(Operand::unit());
        let f = b.finish();
        let proc = c.compile_fn(&f).unwrap();
        assert!(proc
            .body
            .iter()
            .any(|cmd| matches!(cmd, Cmd::Logic(LogicCmd::Tactic(..)))));
    }
}
