#!/usr/bin/env bash
# Smoke test of `gillian serve`: drives a scripted newline-delimited JSON
# session against the built binary over stdin/stdout and asserts the
# incremental contract on the wire:
#
#   * the first `verify` re-proves every target,
#   * the second (warm, unchanged) `verify` re-proves NOTHING,
#   * an `update_spec` on `inc` dirties exactly its dependency cone
#     (`inc` itself plus its spec-caller `inc2` — never `base`),
#   * the daemon answers `stats` and exits cleanly on `shutdown`.
#
# Usage: scripts/daemon_smoke.sh  (from the workspace root)
# Env:   GILLIAN_BIN — path to the binary (default target/release/gillian).

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${GILLIAN_BIN:-target/release/gillian}"
if [[ ! -x "$BIN" ]]; then
    echo "daemon_smoke: building $BIN" >&2
    cargo build --release -p gillian-server
fi

OUT="$(printf '%s\n' \
    '{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}' \
    '{"id":2,"cmd":"verify"}' \
    '{"id":3,"cmd":"verify"}' \
    '{"id":4,"cmd":"update_spec","fn":"inc","requires":["x@ < 2000"],"ensures":["result@ == x@ + 1"]}' \
    '{"id":5,"cmd":"verify"}' \
    '{"id":6,"cmd":"stats"}' \
    '{"id":7,"cmd":"shutdown"}' \
    | "$BIN" serve)"

echo "$OUT"

fail() {
    echo "daemon_smoke: FAIL: $1" >&2
    exit 1
}

# One response line per request, in order.
[[ "$(wc -l <<<"$OUT")" -eq 7 ]] || fail "expected 7 response lines"
line() { sed -n "${1}p" <<<"$OUT"; }

grep -q '"ok":false' <<<"$OUT" && fail "a request errored"

line 1 | grep -q '"targets":\["base","inc","inc2"\]' \
    || fail "load reports the chain targets"
line 2 | grep -q '"all_verified":true' || fail "chain verifies"
line 2 | grep -q '"reverified":\["base","inc","inc2"\]' \
    || fail "cold verify re-proves every target"
line 3 | grep -q '"reverified":\[\]' \
    || fail "warm unchanged verify re-proves nothing"
line 3 | grep -q '"cached":\["base","inc","inc2"\]' \
    || fail "warm verify answers from the cache"
line 4 | grep -q '"dirtied":\["inc","inc2"\]' \
    || fail "spec edit dirties exactly its cone (inc + spec-caller inc2)"
line 5 | grep -q '"reverified":\["inc","inc2"\]' \
    || fail "post-edit verify re-proves exactly the cone"
line 5 | grep -q '"cached":\["base"\]' || fail "base stays cached across the edit"
line 5 | grep -q '"all_verified":true' || fail "the loosened contract still proves"
line 6 | grep -q '"requests_served":6' || fail "stats counts requests"
line 7 | grep -q '"bye":true' || fail "shutdown acknowledged"

echo "daemon_smoke: OK"
