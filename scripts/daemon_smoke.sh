#!/usr/bin/env bash
# Smoke test of `gillian serve`: drives a scripted newline-delimited JSON
# session against the built binary over stdin/stdout and asserts the
# incremental contract on the wire:
#
#   * the first `verify` re-proves every target,
#   * the second (warm, unchanged) `verify` re-proves NOTHING,
#   * an `update_spec` on `inc` dirties exactly its dependency cone
#     (`inc` itself plus its spec-caller `inc2` — never `base`),
#   * the daemon answers `stats` and exits cleanly on `shutdown`,
#   * lint leg: an `update_spec` with an unsatisfiable precondition is
#     rejected with the GL041 finding on the wire and dirties NOTHING, a
#     warn-only edit is accepted with its findings attached, and a `lint`
#     request reports the program's findings without proof search,
#   * restart leg: a NEW daemon process over the same --cache-dir hydrates
#     every target from disk and its first `verify` re-proves nothing,
#   * SIGTERM leg: a daemon killed with SIGTERM (no `shutdown` request)
#     flushes its proof cache on the way out, and a successor daemon over
#     the same --cache-dir hydrates 100% of the targets and re-proves
#     nothing.
#
# Usage: scripts/daemon_smoke.sh  (from the workspace root)
# Env:   GILLIAN_BIN — path to the binary (default target/release/gillian).

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${GILLIAN_BIN:-target/release/gillian}"
if [[ ! -x "$BIN" ]]; then
    echo "daemon_smoke: building $BIN" >&2
    cargo build --release -p gillian-server
fi

OUT="$(printf '%s\n' \
    '{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}' \
    '{"id":2,"cmd":"verify"}' \
    '{"id":3,"cmd":"verify"}' \
    '{"id":4,"cmd":"update_spec","fn":"inc","requires":["x@ < 2000"],"ensures":["result@ == x@ + 1"]}' \
    '{"id":5,"cmd":"verify"}' \
    '{"id":6,"cmd":"stats"}' \
    '{"id":7,"cmd":"shutdown"}' \
    | "$BIN" serve)"

echo "$OUT"

fail() {
    echo "daemon_smoke: FAIL: $1" >&2
    exit 1
}

# One response line per request, in order.
[[ "$(wc -l <<<"$OUT")" -eq 7 ]] || fail "expected 7 response lines"
line() { sed -n "${1}p" <<<"$OUT"; }

grep -q '"ok":false' <<<"$OUT" && fail "a request errored"

line 1 | grep -q '"targets":\["base","inc","inc2"\]' \
    || fail "load reports the chain targets"
line 2 | grep -q '"all_verified":true' || fail "chain verifies"
line 2 | grep -q '"reverified":\["base","inc","inc2"\]' \
    || fail "cold verify re-proves every target"
line 3 | grep -q '"reverified":\[\]' \
    || fail "warm unchanged verify re-proves nothing"
line 3 | grep -q '"cached":\["base","inc","inc2"\]' \
    || fail "warm verify answers from the cache"
line 4 | grep -q '"dirtied":\["inc","inc2"\]' \
    || fail "spec edit dirties exactly its cone (inc + spec-caller inc2)"
line 5 | grep -q '"reverified":\["inc","inc2"\]' \
    || fail "post-edit verify re-proves exactly the cone"
line 5 | grep -q '"cached":\["base"\]' || fail "base stays cached across the edit"
line 5 | grep -q '"all_verified":true' || fail "the loosened contract still proves"
line 6 | grep -q '"requests_served":6' || fail "stats counts requests"
line 7 | grep -q '"bye":true' || fail "shutdown acknowledged"

# ---- Lint leg: the static analyzer gates edits on the wire. -----------------
# An unsatisfiable precondition (`x@ < 5` and `5 < x@`) is a lint error: the
# edit is rejected with the GL041 finding attached and the dependency cone is
# untouched — the follow-up verify answers everything warm. A warn-only edit
# (an orphaned logical variable in inc2's precondition, GL028) goes through
# with its findings on the wire.

LINT_OUT="$(printf '%s\n' \
    '{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}' \
    '{"id":2,"cmd":"verify"}' \
    '{"id":3,"cmd":"update_spec","fn":"inc","requires":["x@ < 5","5 < x@"],"ensures":["result@ == x@ + 1"]}' \
    '{"id":4,"cmd":"verify"}' \
    '{"id":5,"cmd":"update_spec","fn":"inc2","requires":["x@ < 900","y@ < 5"],"ensures":["result@ == x@ + 2"]}' \
    '{"id":6,"cmd":"lint"}' \
    '{"id":7,"cmd":"shutdown"}' \
    | "$BIN" serve)"

echo "$LINT_OUT"
lline() { sed -n "${1}p" <<<"$LINT_OUT"; }

lline 1 | grep -q '"lints":\[\]' || fail "lint leg: load reports a clean workload"
lline 3 | grep -q '"ok":false' || fail "lint leg: unsat-pre edit must be rejected"
lline 3 | grep -q '"code":"GL041"' \
    || fail "lint leg: rejection carries the GL041 finding"
lline 4 | grep -q '"reverified":\[\]' \
    || fail "lint leg: rejected edit must not dirty the dependency cone"
lline 4 | grep -q '"all_verified":true' \
    || fail "lint leg: session stays green after a rejected edit"
lline 5 | grep -q '"ok":true' || fail "lint leg: warn-only edit must be accepted"
lline 5 | grep -q '"code":"GL028"' \
    || fail "lint leg: warn-only edit carries its findings"
lline 6 | grep -q '"errors":0' || fail "lint leg: lint request reports no errors"
lline 6 | grep -q '"code":"GL028"' \
    || fail "lint leg: lint request sees the orphaned variable"
lline 7 | grep -q '"bye":true' || fail "lint leg: shutdown acknowledged"

# The CLI gate over the shipped workloads stays spotless (exit 1 on any
# finding, including warnings).
"$BIN" lint --deny-warnings >/dev/null \
    || fail "lint leg: gillian lint found something in a shipped workload"

# ---- Restart leg: proofs survive the death of the daemon. -------------------
# Two full daemon lifetimes over one cache directory: the first proves cold
# and persists on shutdown; the second — a fresh process — hydrates from
# disk at `load` and answers its first `verify` without a single re-proof.

CACHE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/gillian-smoke-cache.XXXXXX")"
trap 'rm -rf "$CACHE_DIR"' EXIT

REQS="$(printf '%s\n' \
    '{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}' \
    '{"id":2,"cmd":"verify"}' \
    '{"id":3,"cmd":"shutdown"}')"

OUT1="$("$BIN" serve --cache-dir "$CACHE_DIR" <<<"$REQS")"
grep -q '"ok":false' <<<"$OUT1" && fail "restart leg: a cold request errored"
sed -n 2p <<<"$OUT1" | grep -q '"reverified":\["base","inc","inc2"\]' \
    || fail "restart leg: cold daemon re-proves every target"

# The first daemon is dead; its proofs are on disk.
[[ -n "$(ls "$CACHE_DIR"/*.rec 2>/dev/null)" ]] \
    || fail "restart leg: shutdown left no records in $CACHE_DIR"

OUT2="$("$BIN" serve --cache-dir "$CACHE_DIR" <<<"$REQS")"
grep -q '"ok":false' <<<"$OUT2" && fail "restart leg: a warm request errored"
sed -n 1p <<<"$OUT2" | grep -q '"hydrated":\["base","inc","inc2"\]' \
    || fail "restart leg: new daemon hydrates every target from disk"
sed -n 2p <<<"$OUT2" | grep -q '"reverified":\[\]' \
    || fail "restart leg: warm daemon re-proves nothing after restart"
sed -n 2p <<<"$OUT2" | grep -q '"cached":\["base","inc","inc2"\]' \
    || fail "restart leg: warm daemon answers every target from hydrated state"

"$BIN" cache stats --dir "$CACHE_DIR" \
    | grep -q '3 hit / 0 miss' || fail "restart leg: cache stats shows the warm run"

# ---- SIGTERM leg: an ungraceful death still persists the proofs. ------------
# The daemon is fed through a FIFO so its stdin stays open while we kill it
# from the outside: load + verify land, then SIGTERM — no `shutdown` request
# ever arrives. The signal handler must flush the proof cache before exiting,
# so a successor daemon over the same directory hydrates every target and its
# first `verify` re-proves nothing.

SIG_DIR="$(mktemp -d "${TMPDIR:-/tmp}/gillian-smoke-sigterm.XXXXXX")"
trap 'rm -rf "$CACHE_DIR" "$SIG_DIR"' EXIT
FIFO="$SIG_DIR/requests.fifo"
mkfifo "$FIFO"

"$BIN" serve --cache-dir "$SIG_DIR/cache" <"$FIFO" >"$SIG_DIR/out" &
SERVE_PID=$!
exec 3>"$FIFO"   # hold the write end open so the daemon keeps serving

printf '%s\n' \
    '{"id":1,"cmd":"load","workload":"chain","workers":1,"branch_parallelism":1}' \
    '{"id":2,"cmd":"verify"}' >&3

# Wait until both responses are on disk, then pull the rug.
for _ in $(seq 1 300); do
    [[ "$(wc -l <"$SIG_DIR/out")" -ge 2 ]] && break
    sleep 0.1
done
[[ "$(wc -l <"$SIG_DIR/out")" -ge 2 ]] \
    || fail "sigterm leg: daemon never answered load+verify"
sed -n 2p "$SIG_DIR/out" | grep -q '"all_verified":true' \
    || fail "sigterm leg: cold verify did not prove the chain"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "sigterm leg: daemon did not exit cleanly on SIGTERM"
exec 3>&-

[[ -n "$(ls "$SIG_DIR/cache"/*.rec 2>/dev/null)" ]] \
    || fail "sigterm leg: SIGTERM left no records in $SIG_DIR/cache"

SIG_OUT="$("$BIN" serve --cache-dir "$SIG_DIR/cache" <<<"$REQS")"
grep -q '"ok":false' <<<"$SIG_OUT" && fail "sigterm leg: a successor request errored"
sed -n 1p <<<"$SIG_OUT" | grep -q '"hydrated":\["base","inc","inc2"\]' \
    || fail "sigterm leg: successor daemon must hydrate 100% of the targets"
sed -n 2p <<<"$SIG_OUT" | grep -q '"reverified":\[\]' \
    || fail "sigterm leg: successor daemon re-proved something after SIGTERM flush"
sed -n 2p <<<"$SIG_OUT" | grep -q '"cached":\["base","inc","inc2"\]' \
    || fail "sigterm leg: successor daemon must answer everything from the flush"

echo "daemon_smoke: OK (including restart and SIGTERM legs)"
