//! # hybrid-verify
//!
//! Umbrella crate of the reproduction of "A Hybrid Approach to Semi-automated
//! Rust Verification" (PLDI 2025). It re-exports the individual crates; see
//! the README for an overview and `examples/` for runnable entry points.

pub use case_studies;
pub use creusot_lite;
pub use driver;
pub use gillian_engine;
pub use gillian_rust;
pub use gillian_server;
pub use gillian_solver;
pub use rust_ir;

pub use driver::{HybridSession, SessionBuilder, VerificationReport, VerifyDiagnostic};
